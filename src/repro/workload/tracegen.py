"""Monitor-node trace generator (substitute for the paper's 7-day trace).

This is the key substitution of the reproduction (DESIGN.md §2): a
generative model of what one modified Gnutella node observes, producing the
same record streams the paper captured.  The model is event-driven over a
continuous simulated timeline:

* The monitor maintains a roughly constant set of ``n_neighbors``
  connections.  Each neighbor has a heavy-tailed **session length**
  (lognormal by default; Pareto available); when it departs, a fresh
  neighbor takes its slot.  Neighbor ids are never reused.  A further
  ``ephemeral_rate`` fraction of query volume comes from one-shot sources
  that appear once and vanish.
* Each neighbor carries an **activity weight** (lognormal — some neighbors
  forward far more queries than others) and an **interest profile** over a
  few categories (interest-based locality: queries arriving from one
  neighbor concentrate on its subtree's interests).
* For each category there is a current **reply path**: the neighbor through
  which replies for that category arrive.  Paths are anchored at
  *long-lived* neighbors (selection probability ∝ session age — realistic,
  since stable high-capacity peers serve most content, and emergent from
  the Pareto inspection property that old sessions last longest).  A path
  is reassigned when its anchor departs or when its own lifetime — drawn
  from a narrow lognormal around ``path_lifetime_blocks`` — expires.

The *shape* of the paper's results follows from two time scales (both
expressed in units of blocks of ``block_size`` pairs so the calibration
reads directly against the figures):

* ``median_session_blocks`` / ``session_sigma`` control how fast rule
  *antecedents* (query sources) disappear — the coverage decay.  The
  lognormal bulk keeps coverage high over the first several blocks, while
  its upper tail (plus the length bias of sources observed in any training
  block) produces Static Ruleset's long low coverage plateau.
* ``path_lifetime_blocks`` with small ``path_lifetime_sigma`` controls how
  fast rule *consequents* go stale — the success decay.  A *narrow*
  lifetime distribution produces the knee the paper's numbers demand:
  success is barely affected at lag 1 (Sliding Window ≈ 0.79), declines
  roughly linearly over 10 blocks (Lazy ≈ 0.59) and collapses to ≈ 0 by
  lag ~16 (Static).

Two output paths are provided, per the HPC guides' advice to keep the hot
loop lean:

* :meth:`MonitorTraceGenerator.generate_pair_arrays` — the fast path:
  columnar numpy arrays of (time, source, replier, category, host), no
  strings or GUIDs, streamed straight into :class:`repro.trace.PairBlock`
  partitioning.  This is what the experiments use.
* :meth:`MonitorTraceGenerator.iter_events` — the full-fidelity path:
  :class:`~repro.trace.records.QueryRecord` / ``ReplyRecord`` streams with
  query strings, GUIDs (including buggy duplicates) and unreplied queries,
  for exercising the complete store/dedup/join pipeline.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.trace.records import QueryRecord, ReplyRecord
from repro.utils.guid import GuidAllocator
from repro.utils.rng import UniformBuffer, as_generator, spawn_child
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)
from repro.workload.churn import LogNormalSessions, ParetoSessions
from repro.workload.interests import InterestModel
from repro.workload.querygen import QueryTextModel

__all__ = ["MonitorTraceConfig", "MonitorTraceGenerator", "PairArrays"]


@dataclass(frozen=True)
class MonitorTraceConfig:
    """Tunable parameters of the monitor-node trace model.

    Defaults are the calibrated values (DESIGN.md §7): with these, the four
    strategies of the paper land in the reported bands.  All horizon-like
    quantities are denominated in *blocks* of ``block_size`` query–reply
    pairs, matching how the paper reports everything.
    """

    #: pairs per block — the paper's default simulator granularity.
    block_size: int = 10_000
    #: target number of concurrent monitor-node neighbors.
    n_neighbors: int = 120
    #: session-length model: "lognormal" (bulk of sessions long, heavy
    #: upper tail — the calibrated default) or "pareto" (extreme tail).
    session_model: str = "lognormal"
    #: median neighbor session length in blocks (lognormal model).
    median_session_blocks: float = 10.0
    #: lognormal sigma of session lengths: larger -> more very short and
    #: very long sessions.  The upper tail is what keeps Static Ruleset's
    #: coverage on its long low plateau.
    session_sigma: float = 1.5
    #: fraction of the *initial* neighbor population connected for the
    #: whole capture window (always-on hosts; over a 7-day trace,
    #: "permanent" peers are by definition present at the start).  This
    #: is what keeps Static Ruleset's long-run average coverage near the
    #: paper's 0.18 over 365 trials — without it, block-0 sources die out
    #: entirely within ~100 blocks.  Replacement neighbors are never
    #: permanent.
    permanent_fraction: float = 0.15
    #: Pareto shape of neighbor session lengths (pareto model; must be > 1).
    session_alpha: float = 1.35
    #: mean neighbor session length in blocks (pareto model).
    mean_session_blocks: float = 6.0
    #: median planned lifetime of a category's reply path, in blocks.
    path_lifetime_blocks: float = 13.5
    #: lognormal sigma of the path lifetime (small => knee-shaped decay).
    path_lifetime_sigma: float = 0.15
    #: exponent biasing path anchoring toward old (long-lived) neighbors.
    anchor_age_exponent: float = 1.0
    #: cap (in blocks) on the age used for anchor weighting, so a single
    #: very long-lived neighbor does not end up anchoring every category.
    anchor_age_cap_blocks: float = 8.0
    #: probability that a reply arrives via a uniformly random neighbor
    #: instead of the category's anchor (transient alternate routes — in a
    #: real overlay, replies for one query can flow back along several
    #: paths).  This bounds achievable success below coverage, as observed
    #: in the paper (success slightly under coverage even for Sliding).
    path_noise: float = 0.10
    #: lognormal sigma of per-neighbor activity weights.
    activity_sigma: float = 1.1
    #: expected interest-profile lifetime in blocks (0 disables drift).
    #: §III-B.3 names *both* staleness sources: "If the types of content
    #: queried for or the neighbors issuing the queries change over time"
    #: — this knob is the first one: a persistent neighbor's subtree
    #: occasionally shifts to new interests without reconnecting.
    interest_drift_blocks: float = 0.0
    #: fraction of query volume arriving from *ephemeral* sources — hosts
    #: that forward one or a few queries and vanish (ubiquitous in real
    #: Gnutella traces).  Ephemeral sources never accumulate the support a
    #: rule needs, so this directly sets the achievable coverage ceiling.
    ephemeral_rate: float = 0.13
    #: number of interest categories in the universe.
    n_categories: int = 160
    #: Zipf exponent of global category popularity (0 = uniform).  Flatter
    #: popularity spreads reply paths over more categories, reducing the
    #: run-to-run variance a handful of dominant categories would cause.
    category_popularity_exponent: float = 0.55
    #: categories per neighbor interest profile.
    interests_per_neighbor: int = 3
    #: fraction of queries that receive a reply (paper: ~31%).
    reply_rate: float = 0.31
    #: probability a query GUID duplicates an earlier one (buggy clients).
    duplicate_guid_rate: float = 0.002
    #: query–reply pairs per simulated second (sets wall-clock timestamps).
    pair_rate: float = 6.0
    #: mean reply latency in seconds.
    reply_delay_mean: float = 2.5

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.n_neighbors < 2:
            raise ValueError("n_neighbors must be >= 2")
        if self.session_model not in ("lognormal", "pareto"):
            raise ValueError(f"unknown session_model {self.session_model!r}")
        if self.session_alpha <= 1.0:
            raise ValueError("session_alpha must exceed 1")
        check_positive("median_session_blocks", self.median_session_blocks)
        check_positive("session_sigma", self.session_sigma)
        check_probability("permanent_fraction", self.permanent_fraction)
        check_positive("mean_session_blocks", self.mean_session_blocks)
        check_positive("path_lifetime_blocks", self.path_lifetime_blocks)
        check_positive("path_lifetime_sigma", self.path_lifetime_sigma)
        check_positive("anchor_age_cap_blocks", self.anchor_age_cap_blocks)
        check_probability("path_noise", self.path_noise)
        check_positive("activity_sigma", self.activity_sigma)
        check_non_negative("interest_drift_blocks", self.interest_drift_blocks)
        if self.n_categories < 1:
            raise ValueError("n_categories must be >= 1")
        check_non_negative(
            "category_popularity_exponent", self.category_popularity_exponent
        )
        if not 1 <= self.interests_per_neighbor <= self.n_categories:
            raise ValueError("interests_per_neighbor out of range")
        check_probability("ephemeral_rate", self.ephemeral_rate)
        check_fraction("reply_rate", self.reply_rate)
        check_probability("duplicate_guid_rate", self.duplicate_guid_rate)
        check_positive("pair_rate", self.pair_rate)
        check_positive("reply_delay_mean", self.reply_delay_mean)

    @property
    def seconds_per_block(self) -> float:
        return self.block_size / self.pair_rate


@dataclass
class PairArrays:
    """Columnar query–reply pairs (the fast generation path)."""

    time: np.ndarray  # float64, seconds
    source: np.ndarray  # int64 neighbor ids
    replier: np.ndarray  # int64 neighbor ids
    category: np.ndarray  # int64
    host: np.ndarray  # int64 remote server ids

    def __post_init__(self) -> None:
        n = len(self.time)
        for name in ("source", "replier", "category", "host"):
            if len(getattr(self, name)) != n:
                raise ValueError("PairArrays columns must share one length")

    def __len__(self) -> int:
        return len(self.time)


class _Neighbor:
    __slots__ = ("node_id", "joined_at", "leaves_at", "weight", "profile", "drift_at")

    def __init__(self, node_id, joined_at, leaves_at, weight, profile, drift_at=float("inf")):
        self.node_id = node_id
        self.joined_at = joined_at
        self.leaves_at = leaves_at
        self.weight = weight
        self.profile = profile
        self.drift_at = drift_at


class _Path:
    __slots__ = ("anchor", "expires_at")

    def __init__(self, anchor: _Neighbor, expires_at: float):
        self.anchor = anchor
        self.expires_at = expires_at


class MonitorTraceGenerator:
    """Stateful generator of the synthetic monitor-node trace."""

    def __init__(self, config: MonitorTraceConfig | None = None, *, seed=None) -> None:
        self.config = config or MonitorTraceConfig()
        self._rng = as_generator(seed)
        cfg = self.config
        if cfg.session_model == "pareto":
            self._sessions = ParetoSessions(
                alpha=cfg.session_alpha,
                mean=cfg.mean_session_blocks * cfg.seconds_per_block,
            )
        else:
            self._sessions = LogNormalSessions(
                median=cfg.median_session_blocks * cfg.seconds_per_block,
                sigma=cfg.session_sigma,
            )
        self._interests = InterestModel(
            cfg.n_categories,
            popularity_exponent=cfg.category_popularity_exponent,
        )
        self._text = QueryTextModel()
        self._guids = GuidAllocator(
            duplicate_rate=cfg.duplicate_guid_rate, rng=spawn_child(self._rng)
        )
        self._now = 0.0
        self._next_node_id = 0
        self._next_host_id = 1 << 20  # remote server ids, disjoint from neighbors
        self._neighbors: list[_Neighbor] = []
        self._departures: list[tuple[float, int]] = []  # (leaves_at, node_id) heap
        self._by_id: dict[int, _Neighbor] = {}
        self._paths: dict[int, _Path] = {}
        self._cum_weights: list[float] = []
        self._weights_dirty = True
        # Hot-loop uniforms come from a buffered child stream (profiling
        # showed scalar Generator.random() dominating generation time);
        # rare events (churn, path assignment) keep using self._rng.
        self._uniforms = UniformBuffer(spawn_child(self._rng))
        # Pre-built interest profiles reused by ephemeral sources (their
        # identity is unique per query, so profile reuse is unobservable
        # and keeps profile construction off the per-query hot path).
        self._ephemeral_profiles = [
            self._interests.sample_profile(
                self._rng, width=self.config.interests_per_neighbor
            )
            for _ in range(64)
        ]
        self._warmup()

    # ------------------------------------------------------------------
    # population maintenance
    # ------------------------------------------------------------------
    def _warmup(self) -> None:
        """Create the initial neighbor set with *in-progress* sessions.

        Each initial session is sampled and the monitor is assumed to have
        joined at a uniform point within it (stationary start), so the
        initial population already exhibits the length-biased age mix a
        long-running node would see.
        """
        cfg = self.config
        for _ in range(cfg.n_neighbors):
            if float(self._rng.random()) < cfg.permanent_fraction:
                # Always-on host: present since long before the capture
                # started and for its whole duration.
                elapsed = (
                    float(self._rng.random())
                    * cfg.median_session_blocks
                    * cfg.seconds_per_block
                )
                self._add_neighbor(joined_at=-elapsed, leaves_at=float("inf"))
                continue
            duration = self._sessions.sample(self._rng)
            elapsed = float(self._rng.random()) * duration
            self._add_neighbor(joined_at=-elapsed, leaves_at=duration - elapsed)

    def _add_neighbor(self, *, joined_at: float, leaves_at: float) -> _Neighbor:
        cfg = self.config
        node_id = self._next_node_id
        self._next_node_id += 1
        weight = float(
            np.exp(cfg.activity_sigma * self._rng.standard_normal())
        )
        profile = self._interests.sample_profile(
            self._rng, width=cfg.interests_per_neighbor
        )
        neighbor = _Neighbor(
            node_id, joined_at, leaves_at, weight, profile, self._next_drift_time()
        )
        self._neighbors.append(neighbor)
        self._by_id[node_id] = neighbor
        heapq.heappush(self._departures, (leaves_at, node_id))
        self._weights_dirty = True
        return neighbor

    def _process_departures(self) -> None:
        while self._departures and self._departures[0][0] <= self._now:
            _, node_id = heapq.heappop(self._departures)
            gone = self._by_id.pop(node_id, None)
            if gone is None:
                continue
            self._neighbors.remove(gone)
            self._weights_dirty = True
            # Constant-degree policy: the monitor immediately replaces a
            # departed connection with a fresh neighbor.
            duration = self._sessions.sample(self._rng)
            self._add_neighbor(joined_at=self._now, leaves_at=self._now + duration)

    def _next_drift_time(self) -> float:
        cfg = self.config
        if cfg.interest_drift_blocks <= 0.0:
            return float("inf")
        mean = cfg.interest_drift_blocks * cfg.seconds_per_block
        return self._now + float(self._rng.exponential(mean))

    def _maybe_drift(self, neighbor: _Neighbor) -> None:
        """Lazily resample a neighbor's interests when its drift timer fires."""
        if self._now >= neighbor.drift_at:
            neighbor.profile = self._interests.sample_profile(
                self._rng, width=self.config.interests_per_neighbor
            )
            neighbor.drift_at = self._next_drift_time()

    def _rebuild_weights(self) -> None:
        acc = 0.0
        cum = []
        for nb in self._neighbors:
            acc += nb.weight
            cum.append(acc)
        self._cum_weights = cum
        self._weights_dirty = False

    def _pick_source(self) -> _Neighbor:
        if self.config.ephemeral_rate > 0.0 and (
            self._uniforms.next() < self.config.ephemeral_rate
        ):
            return self._make_ephemeral_source()
        if self._weights_dirty:
            self._rebuild_weights()
        total = self._cum_weights[-1]
        u = self._uniforms.next() * total
        idx = bisect_right(self._cum_weights, u)
        if idx >= len(self._neighbors):  # floating-point edge
            idx = len(self._neighbors) - 1
        return self._neighbors[idx]

    def _make_ephemeral_source(self) -> _Neighbor:
        """A one-shot source: unique id, never joins the neighbor set."""
        node_id = self._next_node_id
        self._next_node_id += 1
        profile = self._ephemeral_profiles[
            self._uniforms.next_index(len(self._ephemeral_profiles))
        ]
        return _Neighbor(node_id, self._now, self._now, 0.0, profile)

    # ------------------------------------------------------------------
    # reply paths
    # ------------------------------------------------------------------
    def _path_for(self, category: int) -> _Neighbor:
        path = self._paths.get(category)
        if (
            path is None
            or path.expires_at <= self._now
            or path.anchor.node_id not in self._by_id
        ):
            path = self._assign_path(category)
        return path.anchor

    def _assign_path(self, category: int) -> _Path:
        cfg = self.config
        previous = self._paths.get(category)
        previous_id = previous.anchor.node_id if previous is not None else None
        # Anchor selection ∝ min(session age, cap)^gamma: paths go through
        # stable, long-lived neighbors, but no single immortal neighbor
        # monopolizes every category.  The previous anchor is excluded so a
        # path-lifetime expiry genuinely moves the path (content migrates /
        # a better route appears), which is what ages rule consequents.
        age_cap = cfg.anchor_age_cap_blocks * cfg.seconds_per_block
        ages = np.array(
            [
                min(max(self._now - nb.joined_at, 1.0), age_cap)
                if nb.node_id != previous_id
                else 0.0
                for nb in self._neighbors
            ]
        )
        total = ages.sum()
        if total <= 0.0:  # only the previous anchor is available
            idx = int(self._rng.integers(0, len(self._neighbors)))
        else:
            weights = ages ** cfg.anchor_age_exponent
            probs = weights / weights.sum()
            idx = int(self._rng.choice(len(self._neighbors), p=probs))
        anchor = self._neighbors[idx]
        lifetime_blocks = cfg.path_lifetime_blocks * float(
            np.exp(cfg.path_lifetime_sigma * self._rng.standard_normal())
        )
        lifetime = lifetime_blocks * cfg.seconds_per_block
        path = _Path(anchor, self._now + lifetime)
        self._paths[category] = path
        return path

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate_pair_arrays(self, n_pairs: int) -> PairArrays:
        """Generate ``n_pairs`` query–reply pairs as columnar arrays.

        Continues from the generator's current simulated time, so repeated
        calls produce one seamless trace.
        """
        if n_pairs < 0:
            raise ValueError("n_pairs must be non-negative")
        cfg = self.config
        mean_gap = 1.0 / cfg.pair_rate
        times = np.empty(n_pairs)
        sources = np.empty(n_pairs, dtype=np.int64)
        repliers = np.empty(n_pairs, dtype=np.int64)
        categories = np.empty(n_pairs, dtype=np.int64)
        hosts = np.empty(n_pairs, dtype=np.int64)
        gaps = self._rng.exponential(mean_gap, size=n_pairs)
        rng_random = self._rng.random  # local alias for the hot loop
        for i in range(n_pairs):
            self._now += gaps[i]
            self._process_departures()
            source = self._pick_source()
            self._maybe_drift(source)
            category = source.profile.category_for_uniform(self._uniforms.next())
            replier = self._reply_neighbor(category)
            times[i] = self._now
            sources[i] = source.node_id
            repliers[i] = replier.node_id
            categories[i] = category
            hosts[i] = self._host_behind(replier, category)
        return PairArrays(
            time=times,
            source=sources,
            replier=repliers,
            category=categories,
            host=hosts,
        )

    def _reply_neighbor(self, category: int) -> _Neighbor:
        """The neighbor a reply for ``category`` arrives through.

        Usually the category's anchored path; with probability
        ``path_noise`` a uniformly random active neighbor (transient
        alternate route).
        """
        if self.config.path_noise > 0.0 and self._uniforms.next() < self.config.path_noise:
            return self._neighbors[self._uniforms.next_index(len(self._neighbors))]
        return self._path_for(category)

    def _host_behind(self, replier: _Neighbor, category: int) -> int:
        """Synthetic id of the remote server reached through ``replier``.

        Deterministic per (replier, category) so repeated hits for one
        interest resolve to the same remote host, as interest-based
        locality predicts.
        """
        return self._next_host_id + (replier.node_id * 1009 + category) % (1 << 20)

    def iter_events(
        self, n_pairs: int
    ) -> Iterator[tuple[QueryRecord, ReplyRecord | None]]:
        """Full-fidelity stream: queries (some unreplied) and replies.

        Yields ``(query, reply_or_None)`` tuples until ``n_pairs`` replied
        queries have been produced.  Unreplied queries are interleaved at
        the configured ``reply_rate``; GUIDs include buggy duplicates.
        """
        if n_pairs < 0:
            raise ValueError("n_pairs must be non-negative")
        cfg = self.config
        query_rate = cfg.pair_rate / cfg.reply_rate
        mean_gap = 1.0 / query_rate
        produced = 0
        while produced < n_pairs:
            self._now += float(self._rng.exponential(mean_gap))
            self._process_departures()
            source = self._pick_source()
            self._maybe_drift(source)
            category = source.profile.category_for_uniform(self._uniforms.next())
            file_rank = self._uniforms.next_index(100_000)
            query = QueryRecord(
                time=self._now,
                guid=self._guids.next(),
                source=source.node_id,
                query_string=self._text.render(self._rng, category, file_rank),
            )
            if float(self._rng.random()) < cfg.reply_rate:
                replier = self._reply_neighbor(category)
                delay = float(self._rng.exponential(cfg.reply_delay_mean))
                reply = ReplyRecord(
                    time=self._now + delay,
                    guid=query.guid,
                    replier=replier.node_id,
                    host=self._host_behind(replier, category),
                    file_name=f"cat{category:03d}/file{file_rank:05d}.dat",
                )
                produced += 1
                yield query, reply
            else:
                yield query, None

    # ------------------------------------------------------------------
    # introspection (used by tests and examples)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_neighbor_ids(self) -> list[int]:
        return [nb.node_id for nb in self._neighbors]

    @property
    def guid_allocator(self) -> GuidAllocator:
        return self._guids
