"""RULESET-TEST: the paper's coverage and success measures.

Given a rule set and a test block of query–reply pairs (Eq. 1 and Eq. 2 of
the paper):

* ``N`` — queries in the test block that received a reply (every pair);
* ``n`` — those whose *source* matches some rule antecedent;
* ``s`` — those whose (source, replier) matches a rule exactly;
* coverage ``alpha = n / N``; success ``rho = s / n``.

The vectorized path packs pairs into int64 keys and uses sorted-array
membership tests; a pure-Python reference implementation is kept for
property testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rules import RuleSet
from repro.trace.blocks import PairBlock

__all__ = [
    "RulesetTestResult",
    "ruleset_test",
    "ruleset_test_random_subset",
    "ruleset_test_random_subset_reference",
    "ruleset_test_reference",
]


@dataclass(frozen=True)
class RulesetTestResult:
    """Outcome of testing one rule set against one block."""

    n_total: int  # N: replied queries in the test block
    n_covered: int  # n: queries whose source matches an antecedent
    n_successful: int  # s: queries whose (source, replier) matches a rule

    def __post_init__(self) -> None:
        if not 0 <= self.n_successful <= self.n_covered <= self.n_total:
            raise ValueError(
                f"inconsistent counts: s={self.n_successful} "
                f"n={self.n_covered} N={self.n_total}"
            )

    @property
    def coverage(self) -> float:
        """alpha = n / N (0 when the test block is empty)."""
        return self.n_covered / self.n_total if self.n_total else 0.0

    @property
    def success(self) -> float:
        """rho = s / n (0 when no query is covered)."""
        return self.n_successful / self.n_covered if self.n_covered else 0.0

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"coverage={self.coverage:.3f} success={self.success:.3f} "
            f"(N={self.n_total}, n={self.n_covered}, s={self.n_successful})"
        )


def ruleset_test(ruleset: RuleSet, block: PairBlock) -> RulesetTestResult:
    """Vectorized RULESET-TEST."""
    n_total = len(block)
    if n_total == 0 or len(ruleset) == 0:
        return RulesetTestResult(n_total=n_total, n_covered=0, n_successful=0)
    covered = np.isin(block.sources, ruleset.antecedent_array)
    n_covered = int(covered.sum())
    if n_covered == 0:
        return RulesetTestResult(n_total=n_total, n_covered=0, n_successful=0)
    keys = block.packed_keys()
    # pair_key_array is sorted; searchsorted membership is O(n log r).
    rule_keys = ruleset.pair_key_array
    pos = np.searchsorted(rule_keys, keys)
    pos[pos == len(rule_keys)] = len(rule_keys) - 1
    hit = rule_keys[pos] == keys
    n_successful = int(hit.sum())
    return RulesetTestResult(
        n_total=n_total, n_covered=n_covered, n_successful=n_successful
    )


def ruleset_test_random_subset(
    ruleset: RuleSet, block: PairBlock, *, k: int, rng=None
) -> RulesetTestResult:
    """RULESET-TEST under random-subset forwarding (§III-B.1 variant).

    The paper's other option when several rules share an antecedent:
    "future queries can either be sent to a random subset of neighbors as
    with k-random walks, or sent to the k neighbors with the highest
    support."  Here a covered query succeeds only if the *actual* replier
    is among ``k`` consequents drawn uniformly (without replacement) from
    the antecedent's rules — the stochastic counterpart to top-k, used by
    the ``topk-ablation`` comparison.

    Vectorized: for a covered query whose replier *is* one of its source's
    ``m`` consequents, the replier lands in a uniform ``k``-subset with
    probability ``k/m``, independently per query — so one Bernoulli draw
    per matched query replaces the per-query ``rng.choice`` of the
    reference loop (:func:`ruleset_test_random_subset_reference`).  The
    two implementations are distributionally identical (exactly equal
    whenever ``k`` covers every antecedent's consequent list) but consume
    the RNG stream differently.
    """
    from repro.utils.rng import as_generator

    if k < 1:
        raise ValueError("k must be >= 1")
    rng = as_generator(rng)
    n_total = len(block)
    if n_total == 0 or len(ruleset) == 0:
        return RulesetTestResult(n_total=n_total, n_covered=0, n_successful=0)
    antes = ruleset.sorted_antecedent_array
    pos = np.searchsorted(antes, block.sources)
    pos[pos == len(antes)] = len(antes) - 1
    covered = antes[pos] == block.sources
    n_covered = int(covered.sum())
    if n_covered == 0:
        return RulesetTestResult(n_total=n_total, n_covered=0, n_successful=0)
    # Consequent-list length m for each covered query's source.
    m = ruleset.consequent_count_array[pos[covered]]
    # Exact-rule matches among covered queries (same membership test as
    # ruleset_test).
    keys = block.packed_keys()[covered]
    rule_keys = ruleset.pair_key_array
    kpos = np.searchsorted(rule_keys, keys)
    kpos[kpos == len(rule_keys)] = len(rule_keys) - 1
    matched = rule_keys[kpos] == keys
    # Matched & m <= k: always chosen.  Matched & m > k: in the subset
    # with probability k/m.  Unmatched: never.
    certain = matched & (m <= k)
    stochastic = matched & (m > k)
    n_successful = int(certain.sum())
    n_stochastic = int(stochastic.sum())
    if n_stochastic:
        draws = rng.random(n_stochastic)
        n_successful += int((draws * m[stochastic] < k).sum())
    return RulesetTestResult(
        n_total=n_total, n_covered=n_covered, n_successful=n_successful
    )


def ruleset_test_random_subset_reference(
    ruleset: RuleSet, block: PairBlock, *, k: int, rng=None
) -> RulesetTestResult:
    """Pure-Python random-subset RULESET-TEST (reference implementation).

    Draws an explicit uniform ``k``-subset per covered query; the property
    tests check :func:`ruleset_test_random_subset` against it.
    """
    from repro.utils.rng import as_generator

    if k < 1:
        raise ValueError("k must be >= 1")
    rng = as_generator(rng)
    n_total = len(block)
    n_covered = 0
    n_successful = 0
    for source, replier in zip(block.sources.tolist(), block.repliers.tolist()):
        consequents = ruleset.consequents_for(source)
        if not consequents:
            continue
        n_covered += 1
        if len(consequents) <= k:
            chosen = consequents
        else:
            idx = rng.choice(len(consequents), size=k, replace=False)
            chosen = [consequents[i] for i in idx]
        if replier in chosen:
            n_successful += 1
    return RulesetTestResult(
        n_total=n_total, n_covered=n_covered, n_successful=n_successful
    )


def ruleset_test_reference(ruleset: RuleSet, block: PairBlock) -> RulesetTestResult:
    """Pure-Python RULESET-TEST (ground truth for property tests)."""
    n_total = len(block)
    n_covered = 0
    n_successful = 0
    for source, replier in zip(block.sources.tolist(), block.repliers.tolist()):
        if ruleset.covers(source):
            n_covered += 1
            if ruleset.matches(source, replier):
                n_successful += 1
    return RulesetTestResult(
        n_total=n_total, n_covered=n_covered, n_successful=n_successful
    )
