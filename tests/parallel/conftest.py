"""Fixtures for the parallel-engine tests.

The cache and trace provider are process-wide singletons; every test
here must leave them as it found them (off), or later tests would see
stale rulesets/traces.
"""

from __future__ import annotations

import pytest

from repro.parallel.cache import disable_ruleset_cache
from repro.parallel.provider import clear_trace_provider


@pytest.fixture(autouse=True)
def _clean_process_state():
    yield
    disable_ruleset_cache()
    clear_trace_provider()
