"""Tests for repro.persist.snapshot — round trips, integrity, fingerprints."""

import os
import struct

import pytest

from repro.core.streaming import StreamingRules
from repro.persist.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotError,
    fingerprint_counts,
    load_snapshot,
    read_snapshot_header,
    write_snapshot,
)

PAIRS = [(s % 4, r % 3) for s, r in zip(range(40), range(1, 81, 2))]


def exact_counts():
    counts = StreamingRules(min_support_count=2, window_pairs=64).make_counts()
    for source, replier in PAIRS:
        counts.push(source, replier)
    return counts


def lossy_counts():
    counts = StreamingRules(
        min_support_count=2, backend="lossy", epsilon=0.01
    ).make_counts()
    for source, replier in PAIRS:
        counts.push(source, replier)
    return counts


@pytest.fixture(params=["exact", "lossy"])
def counts(request):
    return exact_counts() if request.param == "exact" else lossy_counts()


class TestRoundTrip:
    def test_loaded_twin_fingerprints_identically(self, tmp_path, counts):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, counts)
        twin, header = load_snapshot(path)
        assert fingerprint_counts(twin) == fingerprint_counts(counts)
        assert header["fingerprint"] == fingerprint_counts(counts)
        assert twin.n_rules() == counts.n_rules()

    def test_loaded_twin_behaves_identically(self, tmp_path, counts):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, counts)
        twin, _header = load_snapshot(path)
        for source in range(4):
            assert twin.covers(source) == counts.covers(source)
            assert twin.consequents(source) == counts.consequents(source)
        # the twin keeps learning exactly in step
        for source, replier in [(0, 1), (0, 1), (3, 2)]:
            assert twin.push(source, replier) == counts.push(source, replier)
        assert fingerprint_counts(twin) == fingerprint_counts(counts)

    def test_header_fields_and_meta(self, tmp_path):
        counts = exact_counts()
        path = str(tmp_path / "s.snap")
        header = write_snapshot(path, counts, meta={"node": "7"})
        assert header["backend"] == "exact"
        assert header["n_rules"] == counts.n_rules()
        assert header["node"] == "7"
        assert read_snapshot_header(path) == header

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, exact_counts())
        assert os.listdir(tmp_path) == ["s.snap"]

    def test_rewrite_replaces_atomically(self, tmp_path):
        counts = exact_counts()
        path = str(tmp_path / "s.snap")
        write_snapshot(path, counts)
        counts.push(0, 1)
        write_snapshot(path, counts)
        twin, _ = load_snapshot(path)
        assert fingerprint_counts(twin) == fingerprint_counts(counts)


class TestFingerprint:
    def test_equal_state_equal_fingerprint(self):
        assert fingerprint_counts(exact_counts()) == fingerprint_counts(
            exact_counts()
        )

    def test_fingerprint_tracks_state_changes(self):
        a, b = exact_counts(), exact_counts()
        b.push(0, 1)
        assert fingerprint_counts(a) != fingerprint_counts(b)

    def test_backends_never_collide(self):
        assert fingerprint_counts(exact_counts()) != fingerprint_counts(
            lossy_counts()
        )

    def test_lossy_qualified_cache_excluded(self):
        """A stale vs rebuilt ``_qualified`` cache must not split digests."""
        counts = lossy_counts()
        before = fingerprint_counts(counts)
        counts._rebuild_qualified()
        assert fingerprint_counts(counts) == before


class TestIntegrity:
    def _snapshot(self, tmp_path):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, exact_counts())
        return path

    def test_truncated_file(self, tmp_path):
        path = self._snapshot(tmp_path)
        os.truncate(path, 10)
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_bad_magic(self, tmp_path):
        path = self._snapshot(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[0] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(path)

    def test_unsupported_version(self, tmp_path):
        path = str(tmp_path / "s.snap")
        with open(path, "wb") as fh:
            fh.write(b"RPSN" + struct.pack("<HH", 42, 0) + b"\x00" * 8)
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(path)

    def test_corrupt_header(self, tmp_path):
        path = self._snapshot(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[20] ^= 0xFF  # inside the JSON header
        open(path, "wb").write(bytes(data))
        with pytest.raises(SnapshotError, match="header checksum"):
            load_snapshot(path)

    def test_corrupt_payload(self, tmp_path):
        path = self._snapshot(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(SnapshotError, match="payload digest"):
            load_snapshot(path)

    def test_short_payload(self, tmp_path):
        path = self._snapshot(tmp_path)
        os.truncate(path, os.path.getsize(path) - 4)
        with pytest.raises(SnapshotError, match="payload"):
            load_snapshot(path)

    def test_magic_is_eight_bytes(self):
        assert len(SNAPSHOT_MAGIC) == 8
