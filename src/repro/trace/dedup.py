"""Duplicate-GUID removal.

During the paper's import "it was discovered that some of the
globally-unique identifiers were not truly unique ... For these instances,
only the record corresponding to the first use of that GUID was kept."  We
reproduce exactly that policy over the store tables.
"""

from __future__ import annotations

from repro.store.table import Table
from repro.trace.records import QUERY_COLUMNS, REPLY_COLUMNS

__all__ = ["dedup_queries", "dedup_replies", "dedup_by_first_guid"]


def dedup_by_first_guid(table: Table, out_name: str, columns) -> Table:
    """Copy ``table`` keeping only the first row for each GUID.

    Rows are processed in insertion order, which for trace tables is
    arrival order — so "first" means earliest observed, matching the paper.
    """
    out = Table(out_name, columns)
    seen: set[int] = set()
    guid_col = table.column("guid")
    for rowid, guid in enumerate(guid_col):
        if guid in seen:
            continue
        seen.add(guid)
        out.append(table.row(rowid))
    return out


def dedup_queries(queries: Table, out_name: str = "queries_dedup") -> Table:
    """Deduplicate a query table by GUID (first record kept)."""
    return dedup_by_first_guid(queries, out_name, QUERY_COLUMNS)


def dedup_replies(replies: Table, out_name: str = "replies_dedup") -> Table:
    """Deduplicate a reply table by GUID (first record kept).

    The paper joins each query with the replies to that query; multiple
    replies to one query can legitimately exist, but its cleaned dataset
    kept one pair per GUID (3,254,274 replies -> 3,254,274 pairs), so the
    canonical pipeline also reduces replies to one per GUID.
    """
    return dedup_by_first_guid(replies, out_name, REPLY_COLUMNS)
