"""Tests for repro.experiments.multi (seed sweeps)."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.multi import run_seed_sweep


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    tiny = ExperimentScale("t", 8, 10, 30_000, 80, 30, 60)
    monkeypatch.setattr("repro.experiments.config.DEFAULT_SCALE", tiny)
    monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)


class TestRunSeedSweep:
    def test_aggregates_rows(self):
        sweep = run_seed_sweep("fig1", seeds=[1, 2, 3])
        assert sweep.experiment_id == "fig1"
        assert sweep.seeds == (1, 2, 3)
        coverage = sweep.rows[0]
        assert coverage.n_seeds == 3
        assert 0.0 <= coverage.mean <= 1.0
        assert coverage.std >= 0.0

    def test_report_printable(self):
        sweep = run_seed_sweep("fig1", seeds=[1, 2])
        text = sweep.report()
        assert "fig1" in text
        assert "±" in text

    def test_single_seed_zero_std(self):
        sweep = run_seed_sweep("fig1", seeds=[5])
        assert all(row.std == 0.0 for row in sweep.rows)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_seed_sweep("fig1", seeds=[])

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_seed_sweep("not-an-experiment", seeds=[1])
