"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_child


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(8)
        b = as_generator(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(8)
        b = as_generator(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(99)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_numpy_integer_seed(self):
        gen = as_generator(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    @pytest.mark.parametrize("bad", ["42", 3.14, [1, 2], object()])
    def test_rejects_other_types(self, bad):
        with pytest.raises(TypeError):
            as_generator(bad)


class TestSpawnChild:
    def test_child_is_generator(self, rng):
        child = spawn_child(rng)
        assert isinstance(child, np.random.Generator)

    def test_deterministic_from_parent_state(self):
        a = spawn_child(np.random.default_rng(3)).random(5)
        b = spawn_child(np.random.default_rng(3)).random(5)
        np.testing.assert_array_equal(a, b)

    def test_children_with_different_keys_differ(self):
        parent = np.random.default_rng(3)
        state = parent.bit_generator.state
        a = spawn_child(parent, key=0).random(5)
        parent.bit_generator.state = state
        b = spawn_child(parent, key=1).random(5)
        assert not np.array_equal(a, b)

    def test_sequential_children_differ(self):
        parent = np.random.default_rng(3)
        a = spawn_child(parent).random(5)
        b = spawn_child(parent).random(5)
        assert not np.array_equal(a, b)

    def test_child_independent_of_parent_future(self):
        parent = np.random.default_rng(3)
        child = spawn_child(parent)
        first = child.random()
        parent.random(100)  # advancing the parent must not affect the child
        parent2 = np.random.default_rng(3)
        child2 = spawn_child(parent2)
        assert child2.random() == first

    def test_rejects_non_generator(self):
        with pytest.raises(TypeError):
            spawn_child(42)

    def test_rejects_negative_key(self, rng):
        with pytest.raises(ValueError):
            spawn_child(rng, key=-1)
