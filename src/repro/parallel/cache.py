"""Content-addressed LRU cache of GENERATE-RULESET results.

Sweeps revisit the same ``(block, mining-params)`` combination dozens of
times: every strategy re-mines the blocks Sliding Window already mined,
the topk-ablation's random-subset replay re-mines each block with the
default parameters, and multi-seed trials repeat whole figure runs.
Mining is deterministic, so the second and later visits are pure waste.

:class:`RulesetCache` memoizes :func:`repro.core.generation.generate_ruleset`
keyed by ``(block fingerprint, min_support_count, top_k, min_confidence)``.
The block fingerprint is a content hash (:meth:`PairBlock.fingerprint`),
so a cache entry is invalidated by *construction* whenever block contents
change — there is no staleness to manage, only capacity (a bounded LRU).

Hit/miss/eviction counters are surfaced through :mod:`repro.obs` as
``repro_ruleset_cache_{hits,misses,evictions}_total`` and mirrored in
:meth:`RulesetCache.stats` so parallel workers can report them to the
parent process (each worker has its own registry).

The cache is installed process-wide with :func:`configure_ruleset_cache`
(or the :func:`ruleset_cache` context manager);
:meth:`~repro.core.strategies.RulesetStrategy._generate` and the ablation
replays consult :func:`cached_generate_ruleset`, which falls through to
plain generation when no cache is active — the serial path stays
bit-identical to the uncached one because generation is deterministic.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.core.generation import generate_ruleset
from repro.core.rules import RuleSet
from repro.obs.registry import get_global_registry
from repro.trace.blocks import PairBlock

__all__ = [
    "RulesetCache",
    "cached_generate_ruleset",
    "configure_ruleset_cache",
    "disable_ruleset_cache",
    "get_ruleset_cache",
    "ruleset_cache",
]

DEFAULT_CACHE_SIZE = 512


class RulesetCache:
    """Bounded LRU of mined rule sets keyed by content + mining params."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, RuleSet] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        registry = get_global_registry()
        self._hit_counter = registry.counter(
            "repro_ruleset_cache_hits_total",
            "GENERATE-RULESET calls served from the content-addressed cache.",
        ).labels()
        self._miss_counter = registry.counter(
            "repro_ruleset_cache_misses_total",
            "GENERATE-RULESET calls that had to mine.",
        ).labels()
        self._eviction_counter = registry.counter(
            "repro_ruleset_cache_evictions_total",
            "Rule sets dropped by the cache's LRU bound.",
        ).labels()
        self._size_gauge = registry.gauge(
            "repro_ruleset_cache_size",
            "Rule sets currently held by the content-addressed cache.",
        ).labels()

    @staticmethod
    def key_for(
        block: PairBlock,
        *,
        min_support_count: int,
        top_k: int | None,
        min_confidence: float,
    ) -> tuple:
        return (
            block.fingerprint(),
            int(min_support_count),
            top_k,
            float(min_confidence),
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_generate(
        self,
        block: PairBlock,
        *,
        min_support_count: int = 10,
        top_k: int | None = None,
        min_confidence: float = 0.0,
    ) -> RuleSet:
        """Return the cached rule set for this content/params, mining on miss."""
        key = self.key_for(
            block,
            min_support_count=min_support_count,
            top_k=top_k,
            min_confidence=min_confidence,
        )
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._hit_counter.inc()
            return cached
        self.misses += 1
        self._miss_counter.inc()
        ruleset = generate_ruleset(
            block,
            min_support_count=min_support_count,
            top_k=top_k,
            min_confidence=min_confidence,
        )
        self._entries[key] = ruleset
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._eviction_counter.inc()
        self._size_gauge.set(len(self._entries))
        return ruleset

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Picklable snapshot (workers ship this back to the parent)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        self._entries.clear()
        self._size_gauge.set(0)


#: process-wide active cache (None = caching disabled, plain generation).
_ACTIVE: RulesetCache | None = None


def configure_ruleset_cache(maxsize: int = DEFAULT_CACHE_SIZE) -> RulesetCache:
    """Install (and return) a fresh process-wide ruleset cache."""
    global _ACTIVE
    _ACTIVE = RulesetCache(maxsize)
    return _ACTIVE


def disable_ruleset_cache() -> None:
    """Remove the process-wide cache; generation goes back to mining."""
    global _ACTIVE
    _ACTIVE = None


def get_ruleset_cache() -> RulesetCache | None:
    """The active process-wide cache, or None when caching is off."""
    return _ACTIVE


@contextmanager
def ruleset_cache(maxsize: int = DEFAULT_CACHE_SIZE) -> Iterator[RulesetCache]:
    """Scoped cache installation (restores the previous cache on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    cache = RulesetCache(maxsize)
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous


def cached_generate_ruleset(
    block: PairBlock,
    *,
    min_support_count: int = 10,
    top_k: int | None = None,
    min_confidence: float = 0.0,
) -> RuleSet:
    """GENERATE-RULESET through the active cache (plain mining when off)."""
    cache = _ACTIVE
    if cache is None:
        return generate_ruleset(
            block,
            min_support_count=min_support_count,
            top_k=top_k,
            min_confidence=min_confidence,
        )
    return cache.get_or_generate(
        block,
        min_support_count=min_support_count,
        top_k=top_k,
        min_confidence=min_confidence,
    )
