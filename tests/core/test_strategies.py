"""Tests for repro.core.strategies on hand-built block sequences."""

import pytest

from repro.core.strategies import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    SlidingWindow,
    StaticRuleset,
)
from tests.conftest import make_block


def stationary_blocks(n_blocks, pairs_per_block=40):
    """Identical traffic in every block: (1->10) and (2->20)."""
    pairs = [(1, 10), (2, 20)] * (pairs_per_block // 2)
    return [make_block(pairs, index=i) for i in range(n_blocks)]


def drifting_blocks(n_blocks, pairs_per_block=40):
    """The replier for source 1 changes every block."""
    out = []
    for i in range(n_blocks):
        pairs = [(1, 100 + i)] * pairs_per_block
        out.append(make_block(pairs, index=i))
    return out


class TestStaticRuleset:
    def test_perfect_on_stationary_traffic(self):
        run = StaticRuleset(min_support_count=2).run(stationary_blocks(6))
        assert run.n_trials == 5
        assert run.average_coverage == 1.0
        assert run.average_success == 1.0
        assert run.n_generations == 1

    def test_fails_on_drifting_traffic(self):
        run = StaticRuleset(min_support_count=2).run(drifting_blocks(5))
        assert run.average_coverage == 1.0  # same source keeps querying
        assert run.average_success == 0.0  # but the replier moved

    def test_requires_two_blocks(self):
        with pytest.raises(ValueError):
            StaticRuleset().run(stationary_blocks(1))

    def test_first_trial_marked_fresh(self):
        run = StaticRuleset(min_support_count=2).run(stationary_blocks(4))
        assert run.trials[0].fresh_ruleset
        assert not run.trials[1].fresh_ruleset


class TestSlidingWindow:
    def test_perfect_on_drifting_coverage(self):
        # Sliding always trains on the immediately preceding block, so for
        # per-block drift the antecedent is covered but success is 0.
        run = SlidingWindow(min_support_count=2).run(drifting_blocks(5))
        assert run.average_coverage == 1.0
        assert run.average_success == 0.0

    def test_perfect_on_slow_drift(self):
        # Replier changes every 2 blocks: sliding succeeds on the second
        # block of each phase.
        blocks = []
        for i in range(8):
            replier = 100 + (i // 2)
            blocks.append(make_block([(1, replier)] * 20, index=i))
        run = SlidingWindow(min_support_count=2).run(blocks)
        assert run.average_success == pytest.approx(4 / 7)

    def test_generates_once_per_trial(self):
        run = SlidingWindow(min_support_count=2).run(stationary_blocks(7))
        assert run.n_generations == 6
        assert run.blocks_per_generation == pytest.approx(1.0)
        assert all(t.fresh_ruleset for t in run.trials)


class TestLazySlidingWindow:
    def test_laziness_one_equals_sliding(self):
        blocks = drifting_blocks(6)
        lazy = LazySlidingWindow(laziness=1, min_support_count=2).run(blocks)
        sliding = SlidingWindow(min_support_count=2).run(blocks)
        assert lazy.coverage_series == sliding.coverage_series
        assert lazy.success_series == sliding.success_series

    def test_generation_cadence(self):
        run = LazySlidingWindow(laziness=3, min_support_count=2).run(
            stationary_blocks(10)
        )
        # Initial generation + one after every 3 trials (except at the end).
        assert run.n_generations == 3
        fresh_flags = [t.fresh_ruleset for t in run.trials]
        assert fresh_flags == [True, False, False, True, False, False, True, False, False]

    def test_sawtooth_on_phase_drift(self):
        # Drift every block; lazy with laziness 4 only succeeds right
        # after regeneration... actually never, since each block moves on.
        run = LazySlidingWindow(laziness=4, min_support_count=2).run(drifting_blocks(9))
        assert run.average_success == 0.0
        assert run.average_coverage == 1.0

    def test_rejects_bad_laziness(self):
        with pytest.raises(ValueError):
            LazySlidingWindow(laziness=0)


class TestAdaptiveSlidingWindow:
    def test_no_regeneration_when_quality_high(self):
        run = AdaptiveSlidingWindow(
            history=3, initial_threshold=0.5, min_support_count=2
        ).run(stationary_blocks(8))
        assert run.n_generations == 1  # initial only
        assert run.average_success == 1.0

    def test_regenerates_on_drop(self):
        # Stationary for a while, then the replier flips once and stays.
        blocks = [make_block([(1, 10)] * 20, index=i) for i in range(4)]
        blocks += [make_block([(1, 11)] * 20, index=i) for i in range(4, 8)]
        run = AdaptiveSlidingWindow(
            history=3, initial_threshold=0.5, min_support_count=2
        ).run(blocks)
        assert run.n_generations == 2  # initial + one at the flip
        # After regeneration, success recovers.
        assert run.success_series[-1] == 1.0

    def test_threshold_history_changes_sensitivity(self):
        blocks = drifting_blocks(10)
        eager = AdaptiveSlidingWindow(history=2, min_support_count=2).run(blocks)
        # Per-block drift keeps success at 0, so every trial triggers
        # regeneration regardless of history size (thresholds stay > 0
        # only until the rolling mean collapses).
        assert eager.n_generations >= 2

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            AdaptiveSlidingWindow(history=0)


class TestStrategyValidation:
    @pytest.mark.parametrize(
        "strategy_cls", [StaticRuleset, SlidingWindow, LazySlidingWindow, AdaptiveSlidingWindow]
    )
    def test_all_require_two_blocks(self, strategy_cls):
        with pytest.raises(ValueError):
            strategy_cls().run([make_block([(1, 1)])])

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(min_support_count=0)


class TestGeneratorInput:
    """Strategies must accept one-shot block iterators (store streaming)."""

    def realistic_blocks(self, n_blocks=8):
        import numpy as np

        from repro.trace.blocks import blocks_from_arrays

        rng = np.random.default_rng(42)
        n = n_blocks * 60
        return blocks_from_arrays(
            rng.integers(0, 12, size=n).astype(np.int64),
            rng.integers(50, 58, size=n).astype(np.int64),
            block_size=60,
        )

    @pytest.mark.parametrize(
        "strategy_cls",
        [StaticRuleset, SlidingWindow, LazySlidingWindow, AdaptiveSlidingWindow],
    )
    def test_generator_run_equals_list_run(self, strategy_cls):
        blocks = self.realistic_blocks()
        from_list = strategy_cls(min_support_count=2).run(blocks)
        from_generator = strategy_cls(min_support_count=2).run(iter(blocks))
        assert from_generator == from_list

    @pytest.mark.parametrize(
        "strategy_cls",
        [StaticRuleset, SlidingWindow, LazySlidingWindow, AdaptiveSlidingWindow],
    )
    def test_generator_with_too_few_blocks(self, strategy_cls):
        blocks = stationary_blocks(1)
        with pytest.raises(ValueError):
            strategy_cls(min_support_count=2).run(iter(blocks))

    def test_lazy_generation_cadence_preserved_on_generator(self):
        blocks = drifting_blocks(12)
        eager = LazySlidingWindow(min_support_count=2, laziness=3).run(blocks)
        lazy = LazySlidingWindow(min_support_count=2, laziness=3).run(iter(blocks))
        assert lazy.n_generations == eager.n_generations
        assert [t.fresh_ruleset for t in lazy.trials] == [
            t.fresh_ruleset for t in eager.trials
        ]

    def test_run_off_trace_store_matches_in_memory(self, tmp_path):
        import numpy as np

        from repro.trace.store import write_trace_store

        blocks = self.realistic_blocks()
        sources = np.concatenate([b.sources for b in blocks])
        repliers = np.concatenate([b.repliers for b in blocks])
        reader = write_trace_store(
            tmp_path / "t.rptrace", sources, repliers, block_size=60
        )
        in_memory = SlidingWindow(min_support_count=2).run(blocks)
        from_store = SlidingWindow(min_support_count=2).run(reader.iter_blocks())
        assert from_store == in_memory
