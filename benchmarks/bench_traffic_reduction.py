"""Bench `traffic`: the paper's motivating claim, end-to-end.

§I/§VI: selectively forwarding queries via association rules leads to a
dramatic reduction in flooded query messages while results keep arriving.
Compares flooding, expanding ring, k-random walks, interest shortcuts,
routing indices and association routing on identical overlays/workloads.
"""

from benchmarks.conftest import register_report, run_and_report


def test_traffic_reduction(benchmark):
    result = run_and_report(benchmark, "traffic")
    register_report(
        "per-strategy stats:\n"
        + "\n".join(f"  {k}: {v}" for k, v in result.extras.items())
    )
