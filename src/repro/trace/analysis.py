"""Descriptive statistics over traces.

The paper's methodology section characterizes its dataset (record counts,
duplicate GUIDs, reply rate).  This module computes the same descriptive
profile for any trace — synthetic or imported — plus the block-level
quantities the rule engine's behaviour depends on: source turnover
between blocks, volume concentration, and sub-threshold volume share
(the achievable-coverage ceiling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.blocks import PairBlock

__all__ = [
    "BlockProfile",
    "coverage_ceiling",
    "decay_curves",
    "profile_block",
    "source_turnover",
]


@dataclass(frozen=True)
class BlockProfile:
    """Descriptive statistics of one block of query–reply pairs."""

    n_pairs: int
    n_sources: int
    n_repliers: int
    #: share of pair volume carried by the top decile of sources.
    top_decile_volume_share: float
    #: Gini coefficient of per-source volumes (0 = equal, 1 = one source).
    source_gini: float
    #: share of volume from sources with fewer pairs than the threshold.
    sub_threshold_volume_share: float

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"pairs={self.n_pairs} sources={self.n_sources} "
            f"repliers={self.n_repliers} top10%={self.top_decile_volume_share:.2f} "
            f"gini={self.source_gini:.2f} sub-thr={self.sub_threshold_volume_share:.2f}"
        )


def _gini(counts: np.ndarray) -> float:
    if counts.size == 0:
        return 0.0
    sorted_counts = np.sort(counts).astype(float)
    n = sorted_counts.size
    cum = np.cumsum(sorted_counts)
    total = cum[-1]
    if total == 0:
        return 0.0
    # Standard formula: G = (2 * sum(i*x_i) / (n * total)) - (n+1)/n.
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * sorted_counts)) / (n * total) - (n + 1.0) / n)


def profile_block(block: PairBlock, *, support_threshold: int = 10) -> BlockProfile:
    """Compute the descriptive profile of ``block``."""
    n = len(block)
    if n == 0:
        return BlockProfile(0, 0, 0, 0.0, 0.0, 0.0)
    _sources, counts = np.unique(block.sources, return_counts=True)
    n_repliers = int(np.unique(block.repliers).size)
    sorted_desc = np.sort(counts)[::-1]
    top_k = max(1, int(np.ceil(counts.size / 10)))
    top_share = float(sorted_desc[:top_k].sum() / n)
    sub = float(counts[counts < support_threshold].sum() / n)
    return BlockProfile(
        n_pairs=n,
        n_sources=int(counts.size),
        n_repliers=n_repliers,
        top_decile_volume_share=top_share,
        source_gini=_gini(counts),
        sub_threshold_volume_share=sub,
    )


def source_turnover(block_a: PairBlock, block_b: PairBlock) -> float:
    """Share of block_b's volume from sources absent in block_a.

    This is the per-lag coverage loss a rule set trained on ``block_a``
    cannot avoid: antecedents that simply did not exist yet.
    """
    if len(block_b) == 0:
        return 0.0
    a_sources = np.unique(block_a.sources)
    absent = ~np.isin(block_b.sources, a_sources)
    return float(absent.mean())


def decay_curves(
    blocks, *, support_threshold: int = 10, max_lag: int | None = None
) -> dict[str, list[float]]:
    """Coverage/success of a block-0 rule set at every lag.

    The per-lag decay of one fixed rule set is what the four maintenance
    strategies trade off against (Static rides the whole curve; Sliding
    rides only lag 1).  Returns ``{"coverage": [...], "success": [...]}``
    with entry ``i`` measured at lag ``i + 1``.
    """
    from repro.core.evaluation import ruleset_test
    from repro.core.generation import generate_ruleset

    if len(blocks) < 2:
        raise ValueError("need at least 2 blocks")
    ruleset = generate_ruleset(blocks[0], min_support_count=support_threshold)
    horizon = len(blocks) - 1 if max_lag is None else min(max_lag, len(blocks) - 1)
    coverage, success = [], []
    for lag in range(1, horizon + 1):
        result = ruleset_test(ruleset, blocks[lag])
        coverage.append(result.coverage)
        success.append(result.success)
    return {"coverage": coverage, "success": success}


def coverage_ceiling(block: PairBlock, *, support_threshold: int = 10) -> float:
    """Maximum coverage any rule set trained on ``block`` can reach on it.

    Volume share of sources meeting the support threshold — the in-block
    ceiling that the trace's ephemeral/low-activity sources impose.
    """
    if len(block) == 0:
        return 0.0
    _sources, counts = np.unique(block.sources, return_counts=True)
    covered = counts[counts >= support_threshold].sum()
    return float(covered / len(block))
