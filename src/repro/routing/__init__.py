"""Online routing policies for the overlay simulator.

The paper's baselines (§II) and its contribution, as pluggable per-node
policies:

* :class:`~repro.routing.flooding.FloodingPolicy` — TTL-limited flooding
  (the Gnutella default the paper argues against);
* :class:`~repro.routing.expanding_ring.ExpandingRingPolicy` — repeated
  floods with growing TTL [5];
* :class:`~repro.routing.random_walk.KRandomWalkPolicy` — k random
  walkers [6];
* :class:`~repro.routing.shortcuts.InterestShortcutsPolicy` —
  interest-based shortcut lists probed before flooding [7];
* :class:`~repro.routing.routing_indices.RoutingIndicesPolicy` —
  per-neighbor per-category reachable-document counts [10];
* :class:`~repro.routing.association.AssociationRoutingPolicy` — THE
  PAPER: association rules over (upstream, downstream) neighbor pairs
  learned from reply feedback, with per-node and per-query flooding
  fallback;
* :class:`~repro.routing.hybrid.HybridShortcutAssociationPolicy` — §VI
  combination: shortcuts first, rules as the pre-flood last chance;
* :class:`~repro.routing.topology_adaptation.TopologyAdaptingPolicy` —
  §VI rule-driven overlay rewiring (needs a dynamic topology).
"""

from repro.routing.association import AssociationRoutingPolicy, NeighborRuleTable
from repro.routing.base import RoutingPolicy, dispatch_select
from repro.routing.expanding_ring import ExpandingRingPolicy
from repro.routing.flooding import FloodingPolicy
from repro.routing.hybrid import HybridShortcutAssociationPolicy
from repro.routing.random_walk import KRandomWalkPolicy
from repro.routing.routing_indices import RoutingIndicesPolicy, build_routing_indices
from repro.routing.shortcuts import InterestShortcutsPolicy
from repro.routing.superpeer_rules import SuperPeerRules
from repro.routing.topology_adaptation import TopologyAdaptingPolicy

__all__ = [
    "AssociationRoutingPolicy",
    "ExpandingRingPolicy",
    "FloodingPolicy",
    "HybridShortcutAssociationPolicy",
    "InterestShortcutsPolicy",
    "KRandomWalkPolicy",
    "NeighborRuleTable",
    "RoutingIndicesPolicy",
    "RoutingPolicy",
    "SuperPeerRules",
    "TopologyAdaptingPolicy",
    "build_routing_indices",
    "dispatch_select",
]
