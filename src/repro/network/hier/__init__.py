"""Two-tier association-routing overlay (super-peer communities).

PAPERS.md points past the paper's flat design: Ismail et al. route
queries via super-peers that hold the mined knowledge for a whole
community, and the hypergraph-architecture line organizes peers into
interest communities.  This subpackage builds that tier on top of the
seed's :class:`~repro.network.superpeer.SuperPeerNetwork` baseline:

* :mod:`~repro.network.hier.keyspace` — Kademlia-style XOR keyspace:
  64-bit node/category keys and per-super-peer k-bucket routing tables;
* :mod:`~repro.network.hier.digest` — compact, versioned rule digests
  (top-k mined rules with support/confidence) with a deterministic,
  order-independent merge and a binary wire codec;
* :mod:`~repro.network.hier.community` — leaf-to-super-peer membership,
  exact community content indices, and deterministic leaf re-attachment
  when a super-peer fails;
* :mod:`~repro.network.hier.network` — :class:`HierNetwork`, the
  two-tier simulator: leaves attach to super-peers, super-peers mine
  association rules over their community's aggregated traffic
  (:class:`~repro.routing.superpeer_rules.SuperPeerRules`), exchange
  digests with neighbor super-peers, and fall back to an XOR keyspace
  lookup before resorting to tier-2 flooding.
"""

from repro.network.hier.community import CommunityIndex
from repro.network.hier.digest import (
    DigestEntry,
    MergedRuleTable,
    RuleDigest,
    decode_digest,
)
from repro.network.hier.keyspace import (
    KBucketTable,
    category_key,
    node_key,
    xor_distance,
)
from repro.network.hier.network import HIER_MODES, HierConfig, HierNetwork

__all__ = [
    "CommunityIndex",
    "DigestEntry",
    "HIER_MODES",
    "HierConfig",
    "HierNetwork",
    "KBucketTable",
    "MergedRuleTable",
    "RuleDigest",
    "category_key",
    "decode_digest",
    "node_key",
    "xor_distance",
]
