"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability("p", bad)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction("f", 0.3) == 0.3

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ValueError):
            check_fraction("f", bad)
