"""Tests for the simple routing policies (flooding, expanding ring, walks)."""

import pytest

from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.expanding_ring import ExpandingRingPolicy
from repro.routing.flooding import FloodingPolicy
from repro.routing.random_walk import KRandomWalkPolicy

SMALL = OverlayConfig(
    n_nodes=80, degree=4, n_categories=6, files_per_category=40, library_size=25
)


def build(policy_factory, seed=1):
    overlay = Overlay(SMALL, seed=seed)
    overlay.install_policies(policy_factory)
    return overlay


class TestFloodingPolicy:
    def test_select_returns_all_neighbors(self):
        overlay = build(lambda nid, ov: FloodingPolicy(nid, ov))
        policy = overlay.node(0).policy
        q = overlay.make_query(origin=0)
        assert policy.select(0, None, q) == overlay.topology.neighbors(0)

    def test_workload_statistics(self):
        overlay = build(lambda nid, ov: FloodingPolicy(nid, ov))
        stats = overlay.run_workload(30)
        assert stats.success_rate > 0.5  # popular content is replicated
        assert stats.messages_per_query > 10


class TestExpandingRingPolicy:
    def test_cheaper_than_flooding_for_nearby_content(self):
        flood = build(lambda nid, ov: FloodingPolicy(nid, ov)).run_workload(40)
        ring = build(lambda nid, ov: ExpandingRingPolicy(nid, ov)).run_workload(40)
        assert ring.messages_per_query < flood.messages_per_query
        # Same workload and reach: success must match flooding.
        assert ring.success_rate == pytest.approx(flood.success_rate, abs=0.01)

    def test_single_attempt_on_immediate_hit(self):
        overlay = build(lambda nid, ov: ExpandingRingPolicy(nid, ov))
        # Find a query whose target sits adjacent to the origin.
        for _ in range(200):
            q = overlay.make_query()
            neighbors = overlay.topology.neighbors(q.origin)
            if any(overlay.node(v).shares(q.file_id) for v in neighbors) and not overlay.node(q.origin).shares(q.file_id):
                out = overlay.node(q.origin).policy.route_query(overlay.engine, q)
                assert out.hits >= 1
                assert out.messages <= len(neighbors)
                return
        pytest.skip("no adjacent-content query found")


class TestKRandomWalkPolicy:
    def test_bounded_messages(self):
        overlay = build(
            lambda nid, ov: KRandomWalkPolicy(nid, ov, k=4, ttl_factor=4, seed=nid)
        )
        stats = overlay.run_workload(30)
        assert stats.messages_per_query <= 4 * 4 * SMALL.ttl

    def test_validation(self):
        overlay = Overlay(SMALL, seed=2)
        with pytest.raises(ValueError):
            KRandomWalkPolicy(0, overlay, k=0)
        with pytest.raises(ValueError):
            KRandomWalkPolicy(0, overlay, ttl_factor=0)

    def test_walk_select_returns_single_neighbor(self):
        overlay = build(lambda nid, ov: KRandomWalkPolicy(nid, ov, seed=nid))
        q = overlay.make_query(origin=0)
        selected = overlay.node(0).policy.select(0, None, q)
        assert len(selected) == 1
        assert selected[0] in overlay.topology.neighbors(0)
