"""Property-based invariants of the strategy drivers on random traces."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.strategies import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    SlidingWindow,
    StaticRuleset,
)
from repro.core.streaming import StreamingRules
from tests.conftest import make_block


@st.composite
def random_block_sequences(draw):
    """2-8 blocks of random (source, replier) pairs over small id spaces."""
    n_blocks = draw(st.integers(2, 8))
    n_sources = draw(st.integers(1, 6))
    n_repliers = draw(st.integers(1, 6))
    blocks = []
    for i in range(n_blocks):
        n_pairs = draw(st.integers(1, 60))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        pairs = list(
            zip(
                rng.integers(0, n_sources, n_pairs).tolist(),
                rng.integers(100, 100 + n_repliers, n_pairs).tolist(),
            )
        )
        blocks.append(make_block(pairs, index=i))
    return blocks


STRATEGIES = [
    lambda: StaticRuleset(min_support_count=2),
    lambda: SlidingWindow(min_support_count=2),
    lambda: LazySlidingWindow(min_support_count=2, laziness=3),
    lambda: AdaptiveSlidingWindow(min_support_count=2, history=3),
    lambda: StreamingRules(min_support_count=2, window_pairs=100),
]


@settings(max_examples=40, deadline=None)
@given(random_block_sequences())
def test_metric_bounds_and_trial_alignment(blocks):
    """All strategies: metrics in [0,1], one trial per test block."""
    for factory in STRATEGIES:
        run = factory().run(blocks)
        assert run.n_trials == len(blocks) - 1
        for trial in run.trials:
            assert 0.0 <= trial.coverage <= 1.0
            assert 0.0 <= trial.success <= 1.0
            r = trial.result
            assert 0 <= r.n_successful <= r.n_covered <= r.n_total
        assert [t.block_index for t in run.trials] == list(range(1, len(blocks)))


@settings(max_examples=30, deadline=None)
@given(random_block_sequences())
def test_generation_count_relationships(blocks):
    """Static generates once; sliding once per trial; adaptive in between."""
    static = StaticRuleset(min_support_count=2).run(blocks)
    sliding = SlidingWindow(min_support_count=2).run(blocks)
    adaptive = AdaptiveSlidingWindow(min_support_count=2, history=3).run(blocks)
    lazy = LazySlidingWindow(min_support_count=2, laziness=3).run(blocks)
    assert static.n_generations == 1
    assert sliding.n_generations == len(blocks) - 1
    assert 1 <= adaptive.n_generations <= sliding.n_generations
    assert 1 <= lazy.n_generations <= sliding.n_generations


@settings(max_examples=30, deadline=None)
@given(random_block_sequences())
def test_first_trial_identical_across_batch_strategies(blocks):
    """Every batch strategy trains on block 0 first, so trial 1 matches."""
    runs = [
        StaticRuleset(min_support_count=2).run(blocks),
        SlidingWindow(min_support_count=2).run(blocks),
        LazySlidingWindow(min_support_count=2, laziness=3).run(blocks),
        AdaptiveSlidingWindow(min_support_count=2, history=3).run(blocks),
    ]
    first = runs[0].trials[0]
    for run in runs[1:]:
        assert run.trials[0].coverage == first.coverage
        assert run.trials[0].success == first.success


@settings(max_examples=30, deadline=None)
@given(random_block_sequences())
def test_averages_are_means_of_series(blocks):
    run = SlidingWindow(min_support_count=2).run(blocks)
    assert math.isclose(
        run.average_coverage, sum(run.coverage_series) / run.n_trials
    )
    assert math.isclose(
        run.average_success, sum(run.success_series) / run.n_trials
    )
