"""Rule-driven overlay rewiring (the paper's §VI topology idea).

§VI: "instead of forwarding query messages to a neighbor, which will in
turn forward the message on to one of its neighbors, a node could ask its
neighbors to which node they would forward queries from it.  Once the
node has this information, it could attempt to make this third node a new
neighbor, which would result in queries being forwarded in the future
requiring one less hop."

:class:`TopologyAdaptingPolicy` extends association routing with exactly
that handshake: periodically, the node looks at its own strongest rule
consequent ``v``, asks ``v``'s policy where *it* would forward queries
arriving from this node (``v``'s rule consequent ``w`` for antecedent =
this node), and — if the degree budget allows — connects directly to
``w``.  Requires the overlay to use a
:class:`~repro.network.dynamic.DynamicTopology`.
"""

from __future__ import annotations

from repro.routing.association import AssociationRoutingPolicy

__all__ = ["TopologyAdaptingPolicy"]


class TopologyAdaptingPolicy(AssociationRoutingPolicy):
    """Association routing plus periodic rule-driven rewiring."""

    name = "topology-adapting"

    def __init__(
        self,
        node_id: int,
        overlay,
        *,
        adapt_every: int = 25,
        max_new_links: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(node_id, overlay, **kwargs)
        if adapt_every < 1:
            raise ValueError("adapt_every must be >= 1")
        if max_new_links < 0:
            raise ValueError("max_new_links must be >= 0")
        self.adapt_every = adapt_every
        self.max_new_links = max_new_links
        self.links_added = 0
        self._replies_seen = 0

    def on_reply(self, *, node_id, upstream, downstream, query, provider) -> None:
        super().on_reply(
            node_id=node_id,
            upstream=upstream,
            downstream=downstream,
            query=query,
            provider=provider,
        )
        # Adaptation is paced by observed reply feedback — the same events
        # that populate the rule tables the handshake consults.
        self._replies_seen += 1
        if (
            self._replies_seen % self.adapt_every == 0
            and self.links_added < self.max_new_links
        ):
            self._try_adapt()

    def _try_adapt(self) -> None:
        """One round of the §VI handshake.

        "a node could ask its neighbors to which node they would forward
        queries from it" — each current neighbor ``v`` is asked for its
        strongest rule consequent for antecedent = this node (learned from
        all traffic this node pushed through ``v``, originated or
        transit); the first answer that is a non-neighbor third party
        becomes a new direct link.
        """
        topology = self.overlay.topology
        if not hasattr(topology, "can_add_edge"):
            return  # immutable overlay: adaptation is a no-op
        candidates: list[int] = []
        for v in topology.neighbors(self.node_id):
            v_policy = self.overlay.node(v).policy
            if v_policy is None or not hasattr(v_policy, "rules"):
                continue
            # Ask v: where would you forward queries arriving from me?
            onward = v_policy.rules.consequents(self.node_id, k=1)
            if onward:
                candidates.append(onward[0])
        for w in candidates:
            if w == self.node_id or topology.has_edge(self.node_id, w):
                continue
            if topology.can_add_edge(self.node_id, w):
                topology.add_edge(self.node_id, w)
                self.links_added += 1
                # Seed a rule for the new direct link so the shortcut is
                # used immediately instead of waiting for reply feedback.
                for _ in range(self.rules.min_support_count):
                    self.rules.observe(self.node_id, w)
                return

    def reset(self) -> None:
        super().reset()
        self._replies_seen = 0
