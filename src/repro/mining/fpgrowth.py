"""FP-Growth frequent-itemset mining (Han et al.).

Builds an FP-tree — a prefix tree of transactions with items ordered by
descending frequency — and mines it recursively via conditional pattern
bases, avoiding Apriori's candidate generation.  The test suite asserts
that :func:`fpgrowth` and :func:`repro.mining.apriori.apriori` return
identical (itemset -> count) mappings on random datasets.
"""

from __future__ import annotations

from collections import Counter

from repro.mining.transactions import TransactionDataset

__all__ = ["fpgrowth"]


class _FPNode:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: int | None, parent: "_FPNode | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _FPNode] = {}
        self.link: _FPNode | None = None


class _FPTree:
    """Prefix tree plus per-item header links for sideways traversal."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: dict[int, _FPNode] = {}
        self._tails: dict[int, _FPNode] = {}

    def insert(self, items: list[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                if item in self._tails:
                    self._tails[item].link = child
                else:
                    self.header[item] = child
                self._tails[item] = child
            child.count += count
            node = child

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """All (path-to-root items, count) pairs for occurrences of ``item``."""
        paths = []
        node = self.header.get(item)
        while node is not None:
            path: list[int] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                path.reverse()
            paths.append((path, node.count))
            node = node.link
        return paths

    def single_path(self) -> list[tuple[int, int]] | None:
        """If the tree is a single chain, return its (item, count) list."""
        items = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (node,) = node.children.values()
            items.append((node.item, node.count))
        return items


def _build_tree(
    weighted_transactions: list[tuple[list[int], int]],
    min_support_count: int,
) -> tuple[_FPTree, dict[int, int]]:
    counts: Counter[int] = Counter()
    for items, count in weighted_transactions:
        for item in items:
            counts[item] += count
    frequent = {i: c for i, c in counts.items() if c >= min_support_count}
    tree = _FPTree()
    # Stable, frequency-descending order (ties broken by item id) keeps the
    # tree compact and the recursion deterministic.
    order = {item: (-c, item) for item, c in frequent.items()}
    for items, count in weighted_transactions:
        kept = sorted((i for i in items if i in frequent), key=order.__getitem__)
        if kept:
            tree.insert(kept, count)
    return tree, frequent


def _mine(
    tree: _FPTree,
    frequent: dict[int, int],
    suffix: frozenset[int],
    min_support_count: int,
    out: dict[frozenset[int], int],
    max_size: int | None,
) -> None:
    if max_size is not None and len(suffix) >= max_size:
        return
    chain = tree.single_path()
    if chain is not None:
        # Every combination of chain items joined with the suffix is
        # frequent with the minimum count along the chosen prefix.
        _emit_chain_combinations(chain, suffix, out, max_size)
        return
    # Recurse item by item, least-frequent first (bottom of the order).
    for item in sorted(frequent, key=lambda i: (frequent[i], -i)):
        new_suffix = suffix | {item}
        out[new_suffix] = frequent[item]
        cond = tree.prefix_paths(item)
        cond_tree, cond_frequent = _build_tree(cond, min_support_count)
        if cond_frequent:
            _mine(cond_tree, cond_frequent, new_suffix, min_support_count, out, max_size)


def _emit_chain_combinations(
    chain: list[tuple[int, int]],
    suffix: frozenset[int],
    out: dict[frozenset[int], int],
    max_size: int | None,
) -> None:
    n = len(chain)
    budget = None if max_size is None else max_size - len(suffix)
    for mask in range(1, 1 << n):
        if budget is not None and mask.bit_count() > budget:
            continue
        items = set(suffix)
        count = None
        for bit in range(n):
            if mask & (1 << bit):
                item, c = chain[bit]
                items.add(item)
                count = c if count is None else min(count, c)
        out[frozenset(items)] = count


def fpgrowth(
    dataset: TransactionDataset,
    *,
    min_support_count: int = 1,
    max_size: int | None = None,
) -> dict[frozenset[int], int]:
    """Mine all itemsets with support count >= ``min_support_count``.

    Same contract as :func:`repro.mining.apriori.apriori`; the two are
    interchangeable and property-tested for equality.
    """
    if min_support_count < 1:
        raise ValueError("min_support_count must be >= 1")
    if max_size is not None and max_size < 1:
        raise ValueError("max_size must be >= 1 or None")
    weighted = [(sorted(tx), 1) for tx in dataset.transactions]
    tree, frequent = _build_tree(weighted, min_support_count)
    out: dict[frozenset[int], int] = {}
    _mine(tree, frequent, frozenset(), min_support_count, out, max_size)
    return out
