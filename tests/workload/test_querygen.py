"""Tests for repro.workload.querygen."""

import pytest

from repro.workload.querygen import QueryTextModel


class TestQueryTextModel:
    def test_roundtrip(self, rng):
        model = QueryTextModel()
        for category, rank in [(0, 0), (7, 123), (159, 99999)]:
            text = model.render(rng, category, rank)
            assert QueryTextModel.parse(text) == (category, rank)

    def test_decoration_varies_surface_form(self, rng):
        model = QueryTextModel(decorate_probability=1.0)
        text = model.render(rng, 1, 2)
        assert len(text.split()) == 4  # topic + item + adjective + noun

    def test_no_decoration(self, rng):
        model = QueryTextModel(decorate_probability=0.0)
        text = model.render(rng, 1, 2)
        assert text == "topic001 item00002"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            QueryTextModel.parse("free beer download")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            QueryTextModel(decorate_probability=1.5)
