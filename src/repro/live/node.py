"""The paper's rule-routed servent as an asyncio network daemon.

:class:`LiveServent` puts the byte-level state machine from
:mod:`repro.network.servent` on real TCP sockets: it runs an asyncio
server for inbound peers, supervises outbound links (dial, handshake,
reconnect with exponential backoff), and pumps every decoded descriptor
through the same forwarding rules the in-process simulators use —
GUID reply routing, duplicate suppression, TTL aging, shared-file hit
matching.

Rule-routed nodes (``rule_routed=True``) run the paper's association
routing *online*: a :class:`StreamingRuleServent` maintains its rules
through :meth:`repro.core.streaming.StreamingRules.make_counts` — the
§VI immediate-update algorithm — observing one ``(query upstream, reply
downstream)`` pair per QueryHit it routes backwards, and forwarding a
covered query only to the top-k rule consequents.  Uncovered sources
flood, exactly the paper's incremental-deployment fallback, so a
rule-routed daemon interoperates with vanilla flooding peers on the
same overlay.
"""

from __future__ import annotations

import asyncio

from repro.core.streaming import StreamingRules
from repro.live.connection import (
    ConnectionConfig,
    PeerConnection,
    accept_handshake,
    backoff_delays,
    dial_peer,
)
from repro.live.stats import NodeStats
from repro.network.protocol import (
    PAYLOAD_QUERY,
    PAYLOAD_QUERY_HIT,
    DescriptorHeader,
    ProtocolError,
    ReplyRoutingTable,
    encode_message,
)
from repro.network.servent import LOCAL, Servent, SharedFile

__all__ = ["LiveServent", "StreamingRuleServent"]


class StreamingRuleServent(Servent):
    """A servent whose forwarding follows live streaming-rule counts.

    The in-process :class:`~repro.network.servent.RuleRoutedServent`
    carries its own ad-hoc pair counter; this variant plugs into the
    evaluated §VI streaming strategy instead, so the daemon's routing
    quality is the quantity the reproduction already measures offline.
    """

    def __init__(
        self,
        servent_guid: int,
        *,
        rules: StreamingRules,
        top_k: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(servent_guid, **kwargs)
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.counts = rules.make_counts()
        self.top_k = top_k
        self.n_rule_routed = 0
        self.n_flooded = 0
        self.n_rule_regenerations = 0

    def _targets(self, antecedent: int, exclude: int | None) -> list[int]:
        """Live rule consequents for ``antecedent``, best first, capped
        at top-k *after* dropping departed connections — a dead peer must
        not eat a forwarding slot."""
        return [
            c
            for c in self.counts.consequents(antecedent)
            if c in self.connections and c != exclude
        ][: self.top_k]

    def issue_query(self, search: str) -> tuple[int, list[tuple[int, bytes]]]:
        guid, frames = super().issue_query(search)
        targets = self._targets(LOCAL, None)
        if targets:
            keep = set(targets)
            frames = [(conn, frame) for conn, frame in frames if conn in keep]
            self.n_rule_routed += 1
        else:
            self.n_flooded += 1
        return guid, frames

    def _forward(self, from_conn: int, header, payload) -> list[tuple[int, bytes]]:
        if header.payload_type != PAYLOAD_QUERY or header.ttl <= 1:
            return super()._forward(from_conn, header, payload)
        targets = self._targets(from_conn, exclude=from_conn)
        if not targets:
            self.n_flooded += 1
            return super()._forward(from_conn, header, payload)  # flood
        self.n_rule_routed += 1
        aged = header.aged()
        frame = encode_message(aged.guid, aged.ttl, aged.hops, payload)
        return [(conn, frame) for conn in targets]

    def _route_back(self, routes: ReplyRoutingTable, conn_id: int, header, payload):
        if routes is self.query_routes and header.payload_type == PAYLOAD_QUERY_HIT:
            upstream = routes.route_for(header.guid)
            if upstream is not None:
                # §III-B's learning event, fed straight into the §VI
                # streaming counts: a query from `upstream` (or LOCAL)
                # was satisfied through `conn_id`.
                if self.counts.push(upstream, conn_id):
                    self.n_rule_regenerations += 1
        return super()._route_back(routes, conn_id, header, payload)


class LiveServent:
    """One live node: TCP server + supervised outbound links + servent."""

    def __init__(
        self,
        node_id: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        library: list[SharedFile] | None = None,
        rule_routed: bool = False,
        rules: StreamingRules | None = None,
        top_k: int = 2,
        max_ttl: int = 7,
        config: ConnectionConfig | None = None,
    ) -> None:
        if node_id < 0:
            raise ValueError("node_id must be non-negative")
        self.node_id = node_id
        self.host = host
        self.port = port
        self.config = config or ConnectionConfig()
        self.stats = NodeStats()
        guid = 100_000 + node_id
        if rule_routed:
            self.servent: Servent = StreamingRuleServent(
                guid,
                rules=rules
                or StreamingRules(min_support_count=2, window_pairs=512),
                top_k=top_k,
                library=library,
                max_ttl=max_ttl,
            )
        else:
            self.servent = Servent(guid, library=library, max_ttl=max_ttl)
        self._server: asyncio.Server | None = None
        self._conns: dict[int, PeerConnection] = {}
        self._supervisors: dict[tuple[str, int], asyncio.Task] = {}
        self._closed = False

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        """Bind and listen; ``port=0`` resolves to the ephemeral port."""
        self._server = await asyncio.start_server(
            self._accept, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop supervising, stop listening, drop every peer."""
        self._closed = True
        for task in self._supervisors.values():
            task.cancel()
        if self._supervisors:
            await asyncio.gather(
                *self._supervisors.values(), return_exceptions=True
            )
        self._supervisors.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns.values()):
            conn.close()
        await asyncio.sleep(0)  # let cancelled connection tasks unwind

    @property
    def closed(self) -> bool:
        return self._closed

    # -- peering ----------------------------------------------------------
    def add_peer(
        self, host: str, port: int, *, peer_id: int | None = None
    ) -> None:
        """Dial a peer and keep the link alive: on loss or dial failure,
        retry with exponential backoff (``config.max_retries`` bounds
        consecutive failures; None retries forever).  ``peer_id`` pins
        the expected overlay node id; left None, the id learned in the
        handshake is trusted."""
        key = (host, port)
        if key in self._supervisors or self._closed:
            return
        self._supervisors[key] = asyncio.create_task(
            self._supervise(host, port, peer_id)
        )

    async def _supervise(
        self, host: str, port: int, expected_id: int | None
    ) -> None:
        ever_connected = False
        delays = backoff_delays(self.config)
        failures = 0
        try:
            while not self._closed:
                try:
                    reader, writer, peer_id = await dial_peer(
                        host, port, self.node_id, self.config
                    )
                    if expected_id is not None and peer_id != expected_id:
                        writer.close()
                        raise ProtocolError(
                            f"expected node {expected_id} at {host}:{port}, "
                            f"found {peer_id}"
                        )
                except (OSError, ProtocolError, asyncio.TimeoutError):
                    self.stats.dial_failures += 1
                    failures += 1
                    if (
                        self.config.max_retries is not None
                        and failures >= self.config.max_retries
                    ):
                        return
                    await asyncio.sleep(next(delays))
                    continue
                failures = 0
                delays = backoff_delays(self.config)  # reset after success
                conn = self._register(peer_id, reader, writer)
                if ever_connected:
                    self.stats.reconnects += 1
                ever_connected = True
                await conn.wait_closed()
                if self._closed:
                    return
                await asyncio.sleep(next(delays))
        except asyncio.CancelledError:
            pass

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            peer_id = await asyncio.wait_for(
                accept_handshake(reader, writer, self.node_id),
                self.config.handshake_timeout,
            )
        except (ProtocolError, asyncio.TimeoutError, OSError):
            self.stats.protocol_errors += 1
            writer.close()
            return
        self._register(peer_id, reader, writer)

    def _register(
        self,
        peer_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> PeerConnection:
        stale = self._conns.pop(peer_id, None)
        if stale is not None:
            stale.close()  # reconnect superseding a half-dead link
        conn = PeerConnection(
            peer_id,
            reader,
            writer,
            config=self.config,
            stats=self.stats,
            on_message=self._handle,
            on_close=self._conn_closed,
            make_keepalive=self.servent.make_ping,
        )
        self._conns[peer_id] = conn
        self.servent.connect(peer_id)
        self.stats.connects += 1
        conn.start()
        return conn

    def _conn_closed(self, conn: PeerConnection) -> None:
        if self._conns.get(conn.peer_id) is conn:
            del self._conns[conn.peer_id]
            self.servent.disconnect(conn.peer_id)

    @property
    def connected_peers(self) -> set[int]:
        return set(self._conns)

    @property
    def pending_frames(self) -> int:
        """Frames sitting in send queues (the backpressure backlog)."""
        return sum(conn.pending_frames for conn in self._conns.values())

    # -- traffic ----------------------------------------------------------
    def _handle(self, peer_id: int, header: DescriptorHeader, payload) -> None:
        if peer_id not in self.servent.connections:
            return  # raced with a disconnect
        hits_before = len(self.servent.results)
        outgoing = self.servent.handle_message(peer_id, header, payload)
        for conn_id, frame in outgoing:
            self._send(conn_id, frame)
        self.stats.hits_received += len(self.servent.results) - hits_before

    def _send(self, conn_id: int, frame: bytes) -> bool:
        conn = self._conns.get(conn_id)
        if conn is None or not conn.send(frame):
            self.stats.frames_dropped += 1
            return False
        self.stats.frames_out += 1
        return True

    def issue_query(self, search: str) -> int:
        """Originate a Query (rule-routed when rules cover this origin,
        flooded otherwise); returns its GUID.  Hits arrive asynchronously
        in :attr:`results`."""
        guid, frames = self.servent.issue_query(search)
        self.stats.queries_issued += 1
        for conn_id, frame in frames:
            self._send(conn_id, frame)
        return guid

    @property
    def results(self):
        """QueryHits that answered locally issued queries."""
        return self.servent.results

    def snapshot(self) -> dict[str, int]:
        """Current counters (routing decisions folded in) as a dict."""
        if isinstance(self.servent, StreamingRuleServent):
            self.stats.queries_rule_routed = self.servent.n_rule_routed
            self.stats.queries_flooded = self.servent.n_flooded
            self.stats.rule_regenerations = self.servent.n_rule_regenerations
        return self.stats.as_dict()
