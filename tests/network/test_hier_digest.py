"""Tests for repro.network.hier.digest — wire codec and merge determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.hier.digest import (
    DigestEntry,
    DigestError,
    MergedRuleTable,
    RuleDigest,
    decode_digest,
)


def _digest(origin=1, epoch=1, total=100, entries=((0, 2, 10), (1, 3, 5))):
    return RuleDigest(
        origin, epoch, total, [DigestEntry(*triple) for triple in entries]
    )


class TestWireCodec:
    def test_roundtrip(self):
        digest = _digest()
        assert decode_digest(digest.encode()) == digest

    def test_roundtrip_empty(self):
        digest = _digest(entries=())
        assert decode_digest(digest.encode()) == digest

    def test_canonical_entry_order(self):
        forward = _digest(entries=((0, 2, 10), (1, 3, 5)))
        backward = _digest(entries=((1, 3, 5), (0, 2, 10)))
        assert forward.entries == backward.entries
        assert forward.encode() == backward.encode()
        assert forward.fingerprint() == backward.fingerprint()

    def test_truncated_rejected(self):
        with pytest.raises(DigestError):
            decode_digest(b"RD")

    def test_crc_mismatch_rejected(self):
        wire = bytearray(_digest().encode())
        wire[10] ^= 0xFF
        with pytest.raises(DigestError):
            decode_digest(bytes(wire))

    def test_bad_magic_rejected(self):
        import struct
        import zlib

        body = b"XXX1" + _digest().encode()[4:-4]
        wire = body + struct.pack("<I", zlib.crc32(body))
        with pytest.raises(DigestError):
            decode_digest(wire)

    def test_entry_count_mismatch_rejected(self):
        import struct
        import zlib

        wire = _digest().encode()
        # Drop one entry from the body but keep the header count; re-CRC
        # so only the structural check can catch it.
        body = wire[:-4][:-12]
        forged = body + struct.pack("<I", zlib.crc32(body))
        with pytest.raises(DigestError):
            decode_digest(forged)

    def test_confidence(self):
        entry = DigestEntry(0, 2, 25)
        assert entry.confidence(100) == 0.25
        assert entry.confidence(0) == 0.0


# -- merge determinism (the property the overlay exchange relies on) --------

entry_strategy = st.builds(
    DigestEntry,
    category=st.integers(0, 15),
    consequent=st.integers(0, 31),
    support=st.integers(1, 1 << 40),
)

digest_strategy = st.builds(
    RuleDigest,
    origin=st.integers(0, 7),
    epoch=st.integers(0, 5),
    total=st.integers(0, 1 << 40),
    entries=st.lists(entry_strategy, max_size=6),
)


@settings(max_examples=150, deadline=None)
@given(st.lists(digest_strategy, max_size=10), st.randoms(use_true_random=False))
def test_merge_is_order_independent(digests, rnd):
    """Any permutation of the same digest set converges to a
    bit-identical table encoding (hence an identical fingerprint)."""
    ordered = MergedRuleTable()
    for digest in digests:
        ordered.merge(digest)
    shuffled_digests = list(digests)
    rnd.shuffle(shuffled_digests)
    shuffled = MergedRuleTable()
    for digest in shuffled_digests:
        shuffled.merge(digest)
    assert ordered.encode() == shuffled.encode()
    assert ordered.fingerprint() == shuffled.fingerprint()


@settings(max_examples=100, deadline=None)
@given(st.lists(digest_strategy, max_size=8))
def test_merge_is_idempotent(digests):
    once = MergedRuleTable()
    for digest in digests:
        once.merge(digest)
    twice = MergedRuleTable()
    for digest in digests:
        twice.merge(digest)
        twice.merge(digest)  # duplicate delivery (gossip retransmit)
    assert once.encode() == twice.encode()


@settings(max_examples=100, deadline=None)
@given(st.lists(digest_strategy, max_size=8))
def test_highest_epoch_wins_regardless_of_order(digests):
    table = MergedRuleTable()
    for digest in digests:
        table.merge(digest)
    for digest in digests:
        origin_epochs = [d.epoch for d in digests if d.origin == digest.origin]
        assert table.epoch_of(digest.origin) == max(origin_epochs)


class TestMergedRuleTable:
    def test_stale_epoch_ignored(self):
        table = MergedRuleTable()
        assert table.merge(_digest(epoch=3))
        assert not table.merge(_digest(epoch=2, entries=((9, 9, 9),)))
        assert table.epoch_of(1) == 3
        assert table.consequents(9) == []

    def test_equal_epoch_republish_is_noop(self):
        table = MergedRuleTable()
        table.merge(_digest(epoch=1))
        before = table.encode()
        assert not table.merge(_digest(epoch=1))
        assert table.encode() == before

    def test_invalidate_drops_origin(self):
        table = MergedRuleTable()
        table.merge(_digest(origin=1))
        table.merge(_digest(origin=2, entries=((0, 5, 99),)))
        assert table.invalidate(1)
        assert not table.invalidate(1)  # already gone
        assert table.epoch_of(1) is None
        assert len(table) == 1
        assert table.consequents(0) == [5]

    def test_consequents_aggregate_and_rank(self):
        table = MergedRuleTable()
        table.merge(_digest(origin=1, entries=((0, 4, 10), (0, 5, 3))))
        table.merge(_digest(origin=2, entries=((0, 5, 10),)))
        # support: sp5 = 13, sp4 = 10
        assert table.consequents(0, k=2) == [5, 4]
        assert table.consequents(0, k=1) == [5]
        assert table.consequents(7) == []
