"""Tests for repro.network.hier.network — modes, identity, and churn."""

import pytest

from repro.faults.plan import CRASH, FaultEvent, FaultPlan
from repro.network.hier import HIER_MODES, HierConfig, HierNetwork
from repro.network.superpeer import SuperPeerConfig, SuperPeerNetwork
from repro.utils.rng import as_generator

SMALL = dict(
    n_superpeers=8,
    leaves_per_superpeer=6,
    superpeer_degree=3,
    n_categories=8,
    files_per_category=40,
    library_size=15,
    interests_per_peer=3,
    superpeer_ttl=4,
)


def superpeer_crash_plan(n_superpeers: int, *, crashes: int, seed: int) -> FaultPlan:
    """Seeded crash schedule over distinct super-peers (no restarts —
    the two-tier simulator models permanent departure)."""
    rng = as_generator(seed)
    order = [int(sp) for sp in rng.permutation(n_superpeers)][:crashes]
    events = tuple(
        FaultEvent(time=round(0.1 * (i + 1), 3), kind=CRASH, node=sp)
        for i, sp in enumerate(order)
    )
    return FaultPlan(events=events, duration=1.0, label="sp-crash", seed=seed)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "bogus"},
            {"rule_top_k": 0},
            {"digest_every": 0},
            {"digest_top_k": 0},
            {"lookup_contacts": 0},
            {"n_superpeers": 2},  # substrate validation still applies
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HierConfig(**kwargs)

    def test_modes_registry(self):
        assert HIER_MODES == ("flood", "leaf-rules", "superpeer-rules", "hybrid")


class TestFloodIdentity:
    def test_flood_mode_matches_seed_baseline(self):
        """The acceptance gate's identity check, at test scale: flood
        mode is the seed SuperPeerNetwork bit for bit."""
        baseline = SuperPeerNetwork(SuperPeerConfig(**SMALL), seed=11)
        flood = HierNetwork(HierConfig(mode="flood", **SMALL), seed=11)
        b = baseline.run_workload(400, warmup=100)
        f = flood.run_workload(400, warmup=100)
        assert f.total_messages == b.total_messages
        assert f.n_succeeded == b.n_succeeded
        assert f.total_hits == b.total_hits
        assert f.total_duplicates == b.total_duplicates
        assert f.coverage_alpha == 0.0


class TestModes:
    @pytest.mark.parametrize("mode", HIER_MODES)
    def test_success_never_below_baseline(self, mode):
        """The flood fallback is charged on top of failed attempts, so
        every mode answers at least what the baseline answers."""
        baseline = SuperPeerNetwork(SuperPeerConfig(**SMALL), seed=5)
        net = HierNetwork(HierConfig(mode=mode, **SMALL), seed=5)
        b = baseline.run_workload(300, warmup=200)
        m = net.run_workload(300, warmup=200)
        assert m.n_queries == b.n_queries == 300
        assert m.success_rate >= b.success_rate

    @pytest.mark.parametrize("mode", ["leaf-rules", "superpeer-rules", "hybrid"])
    def test_rules_cover_queries_after_warmup(self, mode):
        net = HierNetwork(HierConfig(mode=mode, **SMALL), seed=5)
        stats = net.run_workload(300, warmup=600)
        assert stats.coverage_alpha > 0.0

    def test_digest_exchange_charged_as_control(self):
        net = HierNetwork(
            HierConfig(mode="superpeer-rules", digest_every=2, **SMALL), seed=5
        )
        net.run_workload(400, warmup=0)
        assert net.control_messages > 0
        # Neighbors hold the publisher's digests (some origin merged).
        assert any(len(table) > 0 for table in net.merged)

    def test_directory_publish_charged_in_hybrid(self):
        net = HierNetwork(HierConfig(mode="hybrid", **SMALL), seed=5)
        assert net.control_messages > 0  # initial directory build
        assert net.directory  # every community registered its categories

    def test_leaf_query_own_library_is_free(self):
        net = HierNetwork(HierConfig(mode="superpeer-rules", **SMALL), seed=3)
        leaf = 0
        file_id = next(iter(net._leaf_library[leaf]))
        outcome = net.query(leaf, file_id)
        assert outcome.messages == 0
        assert outcome.hits == 1


class TestChurn:
    @pytest.mark.parametrize("mode", ["superpeer-rules", "hybrid"])
    def test_leaves_reattach_under_seeded_fault_plan(self, mode):
        cfg = HierConfig(mode=mode, digest_every=2, **SMALL)
        net = HierNetwork(cfg, seed=9)
        net.run_workload(200, warmup=400)  # learn rules, publish digests
        plan = superpeer_crash_plan(cfg.n_superpeers, crashes=3, seed=9)
        killed = []
        for event in plan.events:
            assert event.kind == CRASH
            placement = net.kill_superpeer(event.node)
            killed.append(event.node)
            # Every orphan re-homed onto a live super-peer...
            assert len(placement) >= cfg.leaves_per_superpeer
            for leaf, home in placement.items():
                assert net.superpeer_of(leaf) == home
                assert net.community.is_live(home)
                assert home not in killed
            # ... with its library re-indexed at the new home.
            for leaf, home in placement.items():
                file_id = next(iter(net._leaf_library[leaf]))
                assert leaf in net.community.lookup(home, file_id)
            # Digest invalidation: no live table still carries the dead
            # origin's rules.
            for sp in net.community.live_superpeers():
                assert net.merged[sp].epoch_of(event.node) is None
                if net.kbuckets:
                    assert event.node not in net.kbuckets[sp]
        # All leaves live somewhere; no index entries were lost.
        total_indexed = sum(
            net.index_size(sp) for sp in net.community.live_superpeers()
        )
        assert total_indexed == sum(len(lib) for lib in net._leaf_library)
        # The overlay still answers queries.
        stats = net.run_workload(200, warmup=0)
        assert stats.success_rate > 0.5

    def test_churn_is_replayable(self):
        """Equal seed + equal plan -> identical placements and traffic."""
        plan = superpeer_crash_plan(SMALL["n_superpeers"], crashes=2, seed=4)

        def run():
            net = HierNetwork(
                HierConfig(mode="superpeer-rules", **SMALL), seed=21
            )
            net.run_workload(100, warmup=200)
            placements = [
                net.kill_superpeer(event.node) for event in plan.events
            ]
            stats = net.run_workload(200, warmup=0)
            return placements, stats.total_messages, stats.n_succeeded

        assert run() == run()

    def test_kill_dead_superpeer_is_noop(self):
        net = HierNetwork(HierConfig(mode="superpeer-rules", **SMALL), seed=2)
        assert net.kill_superpeer(3)
        assert net.kill_superpeer(3) == {}
