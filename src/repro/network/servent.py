"""A Gnutella servent state machine over the wire protocol.

:class:`Servent` consumes and produces *bytes* (framed by
:mod:`repro.network.protocol`) and implements the Gnutella 0.4 forwarding
rules the paper's deployment story assumes:

* **Ping** — answer with a Pong describing the local library, then
  forward the aged Ping to every other connection;
* **Query** — remember which connection it arrived on (GUID route),
  answer with a QueryHit for every matching local file, then forward the
  aged Query to every other connection; duplicate GUIDs are dropped;
* **Pong / QueryHit** — routed *backwards* through the connection the
  corresponding Ping/Query arrived on, never flooded — which is why no
  hop learns the requester's address (the paper's anonymity point).

:class:`MonitorServent` is the paper's §IV "modified node": a servent
that additionally logs every Query and QueryHit it sees as
:class:`~repro.trace.records.QueryRecord` / ``ReplyRecord`` — the exact
capture methodology, reproduced at the wire level.  An integration test
drives generated traffic through a monitor servent and feeds its capture
into the dedup/join/rules pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.protocol import (
    DescriptorHeader,
    PAYLOAD_PING,
    PAYLOAD_PONG,
    PAYLOAD_QUERY,
    PAYLOAD_QUERY_HIT,
    PingMessage,
    PongMessage,
    QueryHitMessage,
    QueryMessage,
    ReplyRoutingTable,
    decode_message,
    encode_message,
)
from repro.trace.records import QueryRecord, ReplyRecord, render_ip
from repro.utils.timeline import SimClock

__all__ = ["SharedFile", "Servent", "MonitorServent", "RuleRoutedServent"]

#: sentinel connection id for locally originated descriptors.
LOCAL = -1


@dataclass(frozen=True)
class SharedFile:
    """One file in a servent's library."""

    index: int
    name: str
    size: int

    def matches(self, search: str) -> bool:
        """Conjunctive keyword match against the file name (Gnutella style)."""
        name = self.name.lower()
        return all(term in name for term in search.lower().split())


class Servent:
    """One Gnutella node: connections, library, forwarding rules."""

    def __init__(
        self,
        servent_guid: int,
        *,
        library: list[SharedFile] | None = None,
        ip: str | None = None,
        port: int = 6346,
        max_ttl: int = 7,
    ) -> None:
        if not 0 <= servent_guid < (1 << 128):
            raise ValueError("servent_guid must fit in 128 bits")
        self.servent_guid = servent_guid
        self.library = list(library or [])
        self.ip = ip or render_ip(servent_guid % (1 << 31))
        self.port = port
        self.max_ttl = max_ttl
        #: optional :class:`~repro.obs.tracing.QueryTracer`; ``None`` keeps
        #: every hot path at a single attribute-is-None check.
        self.tracer = None
        #: overlay node id used in trace events (owners that know a
        #: friendlier identity than the GUID set this).
        self.trace_node: int | None = None
        self.connections: set[int] = set()
        self.query_routes = ReplyRoutingTable()
        self.ping_routes = ReplyRoutingTable()
        self._next_guid = (servent_guid << 32) + 1
        #: QueryHits that answered locally issued queries.
        self.results: list[QueryHitMessage] = []

    # -- connection management -------------------------------------------
    def connect(self, conn_id: int) -> None:
        if conn_id < 0:
            raise ValueError("connection ids must be non-negative")
        self.connections.add(conn_id)

    def disconnect(self, conn_id: int) -> None:
        self.connections.discard(conn_id)

    # -- tracing -----------------------------------------------------------
    @property
    def _trace_id(self) -> int:
        return self.trace_node if self.trace_node is not None else self.servent_guid

    # -- local actions ------------------------------------------------------
    def _fresh_guid(self) -> int:
        guid = self._next_guid
        self._next_guid += 1
        return guid % (1 << 128)

    def advance_guid_epoch(self, epoch: int, *, span: int = 1 << 20) -> None:
        """Skip the GUID sequence to a per-incarnation epoch.

        A restarted servent that restarts its sequence at 1 re-mints the
        GUIDs of its previous life, and peers' reply-routing tables —
        which deduplicate by GUID — silently drop every descriptor it
        originates.  Supervisors that respawn servents call this with
        the incarnation number so each life mints from a disjoint block
        of ``span`` GUIDs.
        """
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        if span < 1:
            raise ValueError("span must be positive")
        self._next_guid = (self.servent_guid << 32) + epoch * span + 1

    def issue_query(self, search: str) -> tuple[int, list[tuple[int, bytes]]]:
        """Originate a Query; returns (guid, outgoing frames)."""
        guid = self._fresh_guid()
        self.query_routes.record(guid, LOCAL)
        if self.tracer is not None:
            self.tracer.record(
                guid, self._trace_id, "issued", info=search, ttl=self.max_ttl
            )
        frame = encode_message(
            guid, self.max_ttl, 0, QueryMessage(min_speed=0, search=search)
        )
        return guid, [(conn, frame) for conn in sorted(self.connections)]

    def issue_ping(self) -> tuple[int, list[tuple[int, bytes]]]:
        """Originate a Ping; returns (guid, outgoing frames)."""
        guid = self._fresh_guid()
        self.ping_routes.record(guid, LOCAL)
        frame = encode_message(guid, self.max_ttl, 0, PingMessage())
        return guid, [(conn, frame) for conn in sorted(self.connections)]

    def make_ping(self, *, ttl: int = 1) -> bytes:
        """One encoded Ping frame with its reply route recorded.

        TTL 1 by default: a keepalive probe for a single link (the live
        daemon's heartbeat), not a flooded neighbor discovery.
        """
        guid = self._fresh_guid()
        self.ping_routes.record(guid, LOCAL)
        return encode_message(guid, ttl, 0, PingMessage())

    # -- message handling -----------------------------------------------------
    def handle_frame(self, conn_id: int, data: bytes) -> list[tuple[int, bytes]]:
        """Process one incoming frame; returns outgoing (conn, frame) pairs."""
        header, payload = decode_message(data)
        return self.handle_message(conn_id, header, payload)

    def handle_message(
        self, conn_id: int, header: DescriptorHeader, payload
    ) -> list[tuple[int, bytes]]:
        """Process an already-decoded descriptor (the live daemon's entry
        point — its stream decoder has parsed the frame once already)."""
        if conn_id not in self.connections:
            raise ValueError(f"no such connection {conn_id}")
        if header.payload_type == PAYLOAD_PING:
            return self._on_ping(conn_id, header)
        if header.payload_type == PAYLOAD_QUERY:
            return self._on_query(conn_id, header, payload)
        if header.payload_type == PAYLOAD_PONG:
            return self._route_back(self.ping_routes, conn_id, header, payload)
        return self._route_back(self.query_routes, conn_id, header, payload)

    def _on_ping(self, conn_id: int, header) -> list[tuple[int, bytes]]:
        out: list[tuple[int, bytes]] = []
        if not self.ping_routes.record(header.guid, conn_id):
            return out  # duplicate: drop
        pong = PongMessage(
            port=self.port,
            ip=self.ip,
            n_files=len(self.library),
            n_kilobytes=sum(f.size for f in self.library) // 1024,
        )
        out.append(
            (conn_id, encode_message(header.guid, self.max_ttl, 0, pong))
        )
        out.extend(self._forward(conn_id, header, PingMessage()))
        return out

    def _on_query(self, conn_id: int, header, query: QueryMessage) -> list[tuple[int, bytes]]:
        out: list[tuple[int, bytes]] = []
        if not self.query_routes.record(header.guid, conn_id):
            if self.tracer is not None:
                self.tracer.record(
                    header.guid, self._trace_id, "duplicate", peer=conn_id
                )
            return out  # duplicate GUID: drop (keeps the original route)
        if self.tracer is not None:
            self.tracer.record(
                header.guid,
                self._trace_id,
                "received",
                peer=conn_id,
                info=f"ttl={header.ttl} hops={header.hops}",
                ttl=header.ttl,
            )
        n_matched = 0
        for shared in self.library:
            if shared.matches(query.search):
                n_matched += 1
                hit = QueryHitMessage(
                    port=self.port,
                    ip=self.ip,
                    speed=1000,
                    file_index=shared.index,
                    file_size=shared.size,
                    file_name=shared.name,
                    servent_guid=self.servent_guid,
                )
                out.append(
                    (conn_id, encode_message(header.guid, self.max_ttl, 0, hit))
                )
        if n_matched and self.tracer is not None:
            self.tracer.record(
                header.guid,
                self._trace_id,
                "hit",
                info=f"{n_matched} file(s)",
            )
        out.extend(self._forward(conn_id, header, query))
        return out

    def _forward(
        self, from_conn: int, header, payload, *, flood_reason: str = ""
    ) -> list[tuple[int, bytes]]:
        is_query = header.payload_type == PAYLOAD_QUERY
        if header.ttl <= 1:
            if is_query and self.tracer is not None:
                self.tracer.record(
                    header.guid, self._trace_id, "ttl_expired", ttl=header.ttl
                )
            return []
        aged = header.aged()
        frame = encode_message(aged.guid, aged.ttl, aged.hops, payload)
        targets = [conn for conn in sorted(self.connections) if conn != from_conn]
        if is_query and self.tracer is not None:
            for conn in targets:
                self.tracer.record(
                    header.guid,
                    self._trace_id,
                    "flooded",
                    peer=conn,
                    ttl=aged.ttl,
                    reason=flood_reason,
                )
        return [(conn, frame) for conn in targets]

    def _route_back(self, routes: ReplyRoutingTable, conn_id: int, header, payload):
        upstream = routes.route_for(header.guid)
        if upstream is None:
            return []  # no route state (expired or never seen): drop
        if upstream == LOCAL:
            if header.payload_type == PAYLOAD_QUERY_HIT:
                self.results.append(payload)
                if self.tracer is not None:
                    self.tracer.record(
                        header.guid, self._trace_id, "delivered", peer=conn_id
                    )
            return []
        if header.ttl <= 0:
            return []
        if header.payload_type == PAYLOAD_QUERY_HIT and self.tracer is not None:
            self.tracer.record(
                header.guid, self._trace_id, "hit_routed", peer=upstream
            )
        return [
            (
                upstream,
                encode_message(header.guid, max(header.ttl - 1, 0), header.hops + 1, payload),
            )
        ]


class RuleRoutedServent(Servent):
    """A servent running the paper's association-rule forwarding.

    Drop-in compatible with vanilla servents on the wire — "it can be
    deployed in nodes in current systems without requiring that all nodes
    support this method" (§I).  It learns rules from the QueryHits it
    routes backwards (each one pairs the Query's upstream connection with
    the connection the hit returned through) and, when a Query arrives
    from a covered connection, forwards it only to the top-k rule
    consequents instead of all connections.
    """

    def __init__(
        self,
        servent_guid: int,
        *,
        top_k: int = 2,
        min_support_count: int = 2,
        rule_window: int = 512,
        **kwargs,
    ) -> None:
        super().__init__(servent_guid, **kwargs)
        from repro.routing.association import NeighborRuleTable

        self.rules = NeighborRuleTable(
            window=rule_window, min_support_count=min_support_count
        )
        self.top_k = top_k

    def _forward(
        self, from_conn: int, header, payload, *, flood_reason: str = ""
    ) -> list[tuple[int, bytes]]:
        if header.payload_type != PAYLOAD_QUERY or header.ttl <= 1:
            return super()._forward(from_conn, header, payload)
        consequents = [
            c
            for c in self.rules.consequents(from_conn, self.top_k)
            if c in self.connections and c != from_conn
        ]
        if not consequents:
            return super()._forward(
                from_conn, header, payload, flood_reason="no_covering_rule"
            )
        if self.tracer is not None and self.tracer.wants(header.guid):
            aged_ttl = header.ttl - 1
            for conn in consequents:
                support, confidence = self.rules.rule_stats(from_conn, conn)
                self.tracer.record(
                    header.guid,
                    self._trace_id,
                    "rule_routed",
                    peer=conn,
                    ttl=aged_ttl,
                    antecedent=from_conn,
                    consequent=conn,
                    confidence=confidence,
                    support=support,
                )
        aged = header.aged()
        frame = encode_message(aged.guid, aged.ttl, aged.hops, payload)
        return [(conn, frame) for conn in consequents]

    def _route_back(self, routes: ReplyRoutingTable, conn_id: int, header, payload):
        if (
            routes is self.query_routes
            and header.payload_type == PAYLOAD_QUERY_HIT
        ):
            upstream = routes.route_for(header.guid)
            if upstream is not None and upstream != LOCAL:
                # The learning event of §III-B: a query from `upstream`
                # was satisfied through `conn_id`.
                self.rules.observe(upstream, conn_id)
        return super()._route_back(routes, conn_id, header, payload)


class MonitorServent(Servent):
    """The paper's modified capture node: a servent that logs its traffic."""

    def __init__(self, servent_guid: int, *, clock: SimClock | None = None, **kwargs) -> None:
        super().__init__(servent_guid, **kwargs)
        self.clock = clock or SimClock()
        self.query_log: list[QueryRecord] = []
        self.reply_log: list[ReplyRecord] = []

    def handle_message(
        self, conn_id: int, header: DescriptorHeader, payload
    ) -> list[tuple[int, bytes]]:
        if header.payload_type == PAYLOAD_QUERY:
            self.query_log.append(
                QueryRecord(
                    time=self.clock.now,
                    guid=header.guid,
                    source=conn_id,
                    query_string=payload.search,
                )
            )
        elif header.payload_type == PAYLOAD_QUERY_HIT:
            self.reply_log.append(
                ReplyRecord(
                    time=self.clock.now,
                    guid=header.guid,
                    replier=conn_id,
                    host=payload.servent_guid,
                    file_name=payload.file_name,
                )
            )
        return super().handle_message(conn_id, header, payload)
