"""Discrete-event overlay simulation with link latency and node queueing.

The hop-synchronous engine (:mod:`repro.network.engine`) counts messages
but abstracts away *time*.  The paper's §VI claims a latency benefit too:
"results to queries may be received more quickly, and the networks can
support more simultaneous queries."  That is a **congestion** effect —
flooding saturates peers' message queues, so replies crawl back through
backlogged nodes — and testing it needs real queueing dynamics:

* each peer's *uplink* is a FIFO server: transmitting one message takes
  ``service_time`` seconds of the sender's bandwidth (the binding
  resource for 2006-era home peers), so a node forwarding a flood to
  five neighbors serializes five transmissions;
* each transmission then takes ``link_latency`` seconds in flight;
* queries arrive as a Poisson process, so independent query floods
  overlap and compete for the same uplinks;
* a hit generates a QueryHit that travels back hop-by-hop along the
  query's reverse path (real Gnutella routes hits by GUID backpointer),
  waiting in the same uplink queues.

:class:`DiscreteEventNetwork` reuses the overlay's topology, content and
per-node policies unchanged: the same ``select`` decisions drive
forwarding, so flooding and association routing can be compared on
*time-to-first-result* under identical offered load.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.network.messages import Query
from repro.utils.stats import RunningStats
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["DiscreteEventConfig", "DiscreteEventNetwork", "LatencyReport"]


@dataclass(frozen=True)
class DiscreteEventConfig:
    """Timing parameters of the event-driven run."""

    #: one-way propagation delay per overlay hop, seconds.
    link_latency: float = 0.05
    #: uplink transmission time per message at the sender, seconds.
    service_time: float = 0.02
    #: mean inter-arrival time between new queries, seconds.
    query_interarrival: float = 0.25
    #: maximum simulated seconds to wait for stragglers after the last
    #: query is issued.
    drain_time: float = 60.0
    #: seconds after which an unanswered query is re-issued as a full
    #: flood (§III-B's "revert to flooding"); 0 disables the fallback.
    fallback_timeout: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("link_latency", self.link_latency)
        check_positive("service_time", self.service_time)
        check_positive("query_interarrival", self.query_interarrival)
        check_positive("drain_time", self.drain_time)
        check_non_negative("fallback_timeout", self.fallback_timeout)


@dataclass
class LatencyReport:
    """Outcome of an event-driven workload."""

    n_queries: int = 0
    n_answered: int = 0
    first_result_latency: RunningStats = field(default_factory=RunningStats)
    total_messages: int = 0
    peak_queue_length: int = 0

    @property
    def answer_rate(self) -> float:
        return self.n_answered / self.n_queries if self.n_queries else 0.0

    @property
    def mean_latency(self) -> float:
        return self.first_result_latency.mean

    @property
    def p_high_latency(self) -> float:
        """Max observed first-result latency (tail indicator)."""
        return self.first_result_latency.maximum

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"queries={self.n_queries} answered={self.answer_rate:.3f} "
            f"mean_latency={self.mean_latency:.3f}s "
            f"max_latency={self.p_high_latency:.3f}s "
            f"msgs={self.total_messages} peak_queue={self.peak_queue_length}"
        )


class _QueryState:
    __slots__ = (
        "query",
        "issued_at",
        "visited",
        "parent",
        "answered_at",
        "flood_mode",
    )

    def __init__(self, query: Query, issued_at: float) -> None:
        self.query = query
        self.issued_at = issued_at
        self.visited: set[int] = {query.origin}
        self.parent: dict[int, int] = {}
        self.answered_at: float | None = None
        self.flood_mode = False


class DiscreteEventNetwork:
    """Event-driven execution of query workloads over an overlay."""

    def __init__(self, overlay, config: DiscreteEventConfig | None = None) -> None:
        self.overlay = overlay
        self.config = config or DiscreteEventConfig()
        self._events: list[tuple[float, int, tuple]] = []
        self._seq = 0
        self._now = 0.0
        # Per-node uplink state: the time each node's uplink frees up.
        self._free_at = [0.0] * overlay.n_nodes
        self._states: dict[int, _QueryState] = {}
        self.report = LatencyReport()

    # ------------------------------------------------------------------
    def _push(self, time: float, payload: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, payload))

    def _send(self, sender: int | None, target: int, kind: str, guid: int) -> None:
        """Transmit a message through the sender's uplink queue."""
        self.report.total_messages += 1
        if sender is None:
            start = self._now
        else:
            start = max(self._now, self._free_at[sender])
            self._free_at[sender] = start + self.config.service_time
            backlog = int(
                (self._free_at[sender] - self._now) / self.config.service_time
            )
            self.report.peak_queue_length = max(
                self.report.peak_queue_length, backlog
            )
        arrival = start + self.config.service_time + self.config.link_latency
        self._push(arrival, (kind, target, sender, guid))

    # ------------------------------------------------------------------
    def run(self, n_queries: int, *, seed=None) -> LatencyReport:
        """Issue ``n_queries`` Poisson-arriving queries and drain."""
        from repro.utils.rng import as_generator

        if n_queries < 0:
            raise ValueError("n_queries must be non-negative")
        rng = as_generator(seed)
        t = 0.0
        for _ in range(n_queries):
            t += float(rng.exponential(self.config.query_interarrival))
            self._push(t, ("issue", None, None, None))
        deadline = t + self.config.drain_time

        while self._events:
            time, _seq, payload = heapq.heappop(self._events)
            if time > deadline:
                break
            self._now = time
            kind = payload[0]
            if kind == "issue":
                self._handle_issue()
            elif kind == "query":
                self._handle_query(*payload[1:])
            elif kind == "hit":
                self._handle_hit(*payload[1:])
            elif kind == "timeout":
                self._handle_timeout(payload[3])
        return self.report

    # ------------------------------------------------------------------
    def _handle_issue(self) -> None:
        query = self.overlay.make_query()
        state = _QueryState(query, self._now)
        self._states[query.guid] = state
        self.report.n_queries += 1
        if self.overlay.node(query.origin).shares(query.file_id):
            state.answered_at = self._now
            self.report.n_answered += 1
            self.report.first_result_latency.push(0.0)
            return
        if self.config.fallback_timeout > 0.0:
            self._push(
                self._now + self.config.fallback_timeout,
                ("timeout", None, None, query.guid),
            )
        self._forward_from(query.origin, None, state, hops_left=query.ttl)

    def _handle_timeout(self, guid: int) -> None:
        """§III-B fallback: unanswered queries revert to flooding."""
        state = self._states.get(guid)
        if state is None or state.answered_at is not None or state.flood_mode:
            return
        state.flood_mode = True
        state.visited = {state.query.origin}
        state.parent = {}
        self._forward_from(
            state.query.origin, None, state, hops_left=state.query.ttl
        )

    def _forward_from(
        self, node: int, upstream: int | None, state: _QueryState, hops_left: int
    ) -> None:
        if hops_left <= 0:
            return
        policy = self.overlay.node(node).policy
        if policy is None or state.flood_mode:
            targets = self.overlay.topology.neighbors(node)
        else:
            targets = policy.select(node, upstream, state.query)
        for target in targets:
            if target == upstream or target in state.visited:
                continue
            state.visited.add(target)
            state.parent[target] = node
            self._send(node, target, "query", state.query.guid)

    def _handle_query(self, node: int, sender: int | None, guid: int) -> None:
        state = self._states.get(guid)
        if state is None:
            return
        depth = self._depth_of(node, state)
        if depth is None:
            # Stale delivery from before a fallback reset: drop it.
            return
        if self.overlay.node(node).shares(state.query.file_id):
            # Route the hit back toward the origin along the reverse path.
            self._send(node, state.parent[node], "hit", guid)
            return
        self._forward_from(node, sender, state, hops_left=state.query.ttl - depth)

    def _depth_of(self, node: int, state: _QueryState) -> int | None:
        depth = 0
        cursor = node
        while cursor != state.query.origin:
            cursor = state.parent.get(cursor)
            if cursor is None:
                return None
            depth += 1
        return depth

    def _handle_hit(self, node: int, sender: int | None, guid: int) -> None:
        state = self._states.get(guid)
        if state is None:
            return
        if node == state.query.origin:
            if state.answered_at is None:
                state.answered_at = self._now
                self.report.n_answered += 1
                self.report.first_result_latency.push(
                    self._now - state.issued_at
                )
            return
        next_hop = state.parent.get(node)
        if next_hop is None:
            return  # reverse path invalidated by a fallback reset
        self._send(node, next_hop, "hit", guid)
