"""Query–reply pairing (the paper's GUID join).

"A table was created to house pairs of query messages received by the node
... and the reply messages received in response to those queries.  The join
of these data produced 3,254,274 query-reply pairs."
"""

from __future__ import annotations

from repro.store.query import inner_join
from repro.store.table import Table
from repro.trace.records import PAIR_COLUMNS, QueryReplyPair

__all__ = ["build_pair_table", "pair_records"]


def build_pair_table(queries: Table, replies: Table) -> Table:
    """Join deduplicated query and reply tables on GUID.

    Returns a table with :data:`~repro.trace.records.PAIR_COLUMNS`, sorted
    implicitly by query arrival (left/driving side is the query table).
    """
    joined = inner_join(
        queries,
        replies,
        on="guid",
        left_columns=["time", "source", "query_string"],
        right_columns=["time", "replier", "host"],
    )
    # The join names the right side's colliding "time" column
    # "<replies.name>.time"; normalize into the canonical pair schema.
    right_time = f"{replies.name}.time"
    out = Table("pairs", PAIR_COLUMNS)
    cols = [
        joined.column("guid"),
        joined.column("time"),
        joined.column("source"),
        joined.column("query_string"),
        joined.column(right_time),
        joined.column("replier"),
        joined.column("host"),
    ]
    for row in zip(*cols):
        out.append(row)
    return out


def pair_records(pair_table: Table) -> list[QueryReplyPair]:
    """Materialize a pair table as :class:`QueryReplyPair` objects."""
    return [
        QueryReplyPair(
            guid=guid,
            query_time=qt,
            source=source,
            query_string=qs,
            reply_time=rt,
            replier=replier,
            host=host,
        )
        for guid, qt, source, qs, rt, replier, host in pair_table.iter_rows()
    ]
