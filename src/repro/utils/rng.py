"""Deterministic random-number plumbing.

Every stochastic component in this repository accepts either an integer seed
or a ready-made :class:`numpy.random.Generator`.  Centralising the coercion
here keeps experiments reproducible bit-for-bit: a single seed at the
experiment level is fanned out into independent child streams via
:func:`spawn_child`, so adding a new consumer of randomness never perturbs
the draws seen by existing consumers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UniformBuffer", "as_generator", "spawn_child"]

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged so callers can share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"expected int, None, SeedSequence or numpy Generator, got {type(seed).__name__}"
    )


class UniformBuffer:
    """Buffered uniform(0, 1) draws for per-event hot loops.

    numpy's per-call scalar ``Generator.random()`` costs ~0.5 µs of
    dispatch overhead; event-driven simulators that draw several uniforms
    per event pay it millions of times.  This helper draws uniforms in
    large vectorized chunks and hands them out one at a time — profiling
    the trace generator showed this removes ~40% of its runtime.

    Determinism: the sequence is a pure function of the generator's seed
    and the number of draws consumed, exactly like direct scalar calls.
    """

    def __init__(self, rng: np.random.Generator, *, chunk: int = 65536) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self._rng = as_generator(rng)
        self._chunk = int(chunk)
        self._buffer = self._rng.random(self._chunk)
        self._pos = 0

    def next(self) -> float:
        """One uniform draw in [0, 1)."""
        if self._pos == self._chunk:
            self._buffer = self._rng.random(self._chunk)
            self._pos = 0
        value = self._buffer[self._pos]
        self._pos += 1
        return value

    def next_index(self, n: int) -> int:
        """One uniform integer in [0, n)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return int(self.next() * n)


def spawn_child(rng: np.random.Generator, *, key: int = 0) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child stream is statistically independent of the parent (it is built
    from fresh words of the parent's bit generator), so separate subsystems
    seeded from one experiment-level generator do not interfere.  ``key``
    lets callers derive several distinguishable children in a loop.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError("spawn_child expects a numpy Generator")
    if key < 0:
        raise ValueError("key must be non-negative")
    # Draw a fixed number of words regardless of key so different keys give
    # different (but deterministic) children for the same parent state.
    words = rng.integers(0, 2**63 - 1, size=4, dtype=np.int64)
    seq = np.random.SeedSequence(entropy=[int(w) for w in words] + [int(key)])
    return np.random.default_rng(seq)
