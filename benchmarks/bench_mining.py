"""Infrastructure micro-benchmarks: mining and rule-engine throughput.

Not a paper artifact — these benches guard the performance of the hot
paths (the guides' "no optimization without measuring"): Apriori vs
FP-Growth on market-basket data, the vectorized vs reference
GENERATE-RULESET, the vectorized RULESET-TEST, and raw trace generation.

Run directly (``python -m benchmarks.bench_mining --workers 4``) this
module is the serial-vs-parallel replay gate: it times the trace-driven
experiment suite serially, replays it through
:class:`repro.parallel.engine.ParallelExperimentEngine`, asserts the
results are bit-identical, and fails unless the engine is at least
``--min-speedup`` (default 2x) faster.  Timings land in
``BENCH_mining_gate.json`` (see ``docs/performance.md``).
"""

import argparse
from time import perf_counter

import numpy as np
import pytest

from repro.core.evaluation import ruleset_test, ruleset_test_reference
from repro.core.generation import generate_ruleset
from repro.mining.apriori import apriori
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import TransactionDataset
from repro.trace.blocks import PairBlock
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator


@pytest.fixture(scope="module")
def basket_dataset():
    rng = np.random.default_rng(0)
    transactions = [
        set(rng.choice(60, size=rng.integers(2, 8), replace=False).tolist())
        for _ in range(2000)
    ]
    return TransactionDataset(transactions)


@pytest.fixture(scope="module")
def trace_block():
    cfg = MonitorTraceConfig()
    gen = MonitorTraceGenerator(cfg, seed=5)
    arrays = gen.generate_pair_arrays(10_000)
    return PairBlock(sources=arrays.source, repliers=arrays.replier)


def test_apriori_throughput(benchmark, basket_dataset):
    result = benchmark(apriori, basket_dataset, min_support_count=40)
    assert result


def test_fpgrowth_throughput(benchmark, basket_dataset):
    result = benchmark(fpgrowth, basket_dataset, min_support_count=40)
    assert result


def test_generate_ruleset_numpy(benchmark, trace_block):
    benchmark.extra_info["pairs"] = len(trace_block)
    rs = benchmark(generate_ruleset, trace_block, implementation="numpy")
    assert len(rs) > 0


def test_generate_ruleset_python_reference(benchmark, trace_block):
    benchmark.extra_info["pairs"] = len(trace_block)
    rs = benchmark(generate_ruleset, trace_block, implementation="python")
    assert len(rs) > 0


def test_ruleset_test_numpy(benchmark, trace_block):
    rs = generate_ruleset(trace_block)
    benchmark.extra_info["pairs"] = len(trace_block)
    result = benchmark(ruleset_test, rs, trace_block)
    assert result.n_total == len(trace_block)


def test_ruleset_test_python_reference(benchmark, trace_block):
    rs = generate_ruleset(trace_block)
    benchmark.extra_info["pairs"] = len(trace_block)
    result = benchmark(ruleset_test_reference, rs, trace_block)
    assert result.n_total == len(trace_block)


def test_trace_generation_throughput(benchmark):
    def generate():
        gen = MonitorTraceGenerator(MonitorTraceConfig(), seed=6)
        return gen.generate_pair_arrays(20_000)

    benchmark.extra_info["pairs"] = 20_000
    arrays = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(arrays) == 20_000


def test_ruleset_cache_hit_throughput(benchmark, trace_block):
    """A cache hit must be orders of magnitude cheaper than mining."""
    from repro.parallel.cache import cached_generate_ruleset, ruleset_cache

    with ruleset_cache() as cache:
        cached_generate_ruleset(trace_block)  # populate
        benchmark.extra_info["pairs"] = len(trace_block)
        rs = benchmark(cached_generate_ruleset, trace_block)
        assert len(rs) > 0
        assert cache.hits > 0
        benchmark.extra_info["cache_hit_rate"] = f"{cache.hit_rate:.3f}"


# --------------------------------------------------------------------------
# Serial-vs-parallel replay gate (``python -m benchmarks.bench_mining``)
# --------------------------------------------------------------------------

# Every registered experiment that consumes the generated monitor trace —
# the suite the engine's shared trace store and ruleset cache accelerate.
_GATE_IDS = (
    "static",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "adaptive-history",
    "streaming",
    "prune-ablation",
    "confidence-ablation",
    "topk-ablation",
)
_QUICK_IDS = ("fig1", "fig3", "topk-ablation")


def _serial_baseline(ids, seed):
    """Plain run_experiment loop: no provider, no ruleset cache."""
    from repro.experiments import run_experiment

    results = {}
    t0 = perf_counter()
    for experiment_id in ids:
        results[experiment_id] = run_experiment(experiment_id, seed=seed)
    return results, perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.bench_mining",
        description="serial-vs-parallel experiment replay gate",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="engine pool size (default: 4)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail below this serial/parallel ratio (default: 2.0)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"gate on {list(_QUICK_IDS)} only (CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    from benchmarks._emit import emit_bench_json
    from repro.experiments.config import DEFAULT_SEED
    from repro.parallel.engine import run_experiments

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    ids = list(_QUICK_IDS if args.quick else _GATE_IDS)

    print(f"serial baseline: {len(ids)} experiments, seed {seed} ...")
    serial, serial_seconds = _serial_baseline(ids, seed)
    print(f"  {serial_seconds:.2f}s")

    print(f"engine replay: --workers {args.workers} ...")
    t0 = perf_counter()
    run = run_experiments(ids, workers=args.workers, seed=seed)
    parallel_seconds = perf_counter() - t0
    print(
        f"  {parallel_seconds:.2f}s "
        f"({run.shared_traces} shared trace(s), "
        f"cache hit rate {run.cache.get('hit_rate', 0.0):.1%})"
    )

    mismatches = [
        o.experiment_id
        for o in run.outcomes
        if o.result.payload() != serial[o.experiment_id].payload()
    ]
    speedup = (
        serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    )

    # Per-ablation cache demonstration: the top-k ablation's random-subset
    # replay re-mines blocks its own sweep already mined, so a lone
    # in-process engine run must land cache hits.
    ablation_cache = run_experiments(["topk-ablation"], workers=1, seed=seed).cache

    path = emit_bench_json(
        "mining_gate",
        {
            "experiments": ids,
            "seed": seed,
            "workers": args.workers,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "min_speedup": args.min_speedup,
            "payloads_identical": not mismatches,
            "mismatched_experiments": mismatches,
            "shared_traces": run.shared_traces,
            "ruleset_cache": run.cache,
            "topk_ablation_cache": ablation_cache,
        },
    )

    print(f"speedup: {speedup:.2f}x (gate: >= {args.min_speedup:.2f}x)")
    print(
        "payloads: identical"
        if not mismatches
        else f"payloads: MISMATCH in {', '.join(mismatches)}"
    )
    print(
        f"topk-ablation standalone cache: {ablation_cache.get('hits', 0):.0f} "
        f"hits / {ablation_cache.get('misses', 0):.0f} misses "
        f"(hit rate {ablation_cache.get('hit_rate', 0.0):.1%})"
    )
    print(f"bench json written: {path}")

    ok = (
        not mismatches
        and speedup >= args.min_speedup
        and ablation_cache.get("hits", 0) > 0
    )
    if not ok:
        print("GATE FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
