"""Tests for repro.trace.analysis."""

import pytest

from repro.trace.analysis import coverage_ceiling, profile_block, source_turnover
from tests.conftest import make_block


class TestProfileBlock:
    def test_empty_block(self):
        profile = profile_block(make_block([]))
        assert profile.n_pairs == 0
        assert profile.source_gini == 0.0

    def test_counts(self):
        block = make_block([(1, 10)] * 12 + [(2, 11)] * 4)
        profile = profile_block(block, support_threshold=10)
        assert profile.n_pairs == 16
        assert profile.n_sources == 2
        assert profile.n_repliers == 2
        assert profile.sub_threshold_volume_share == pytest.approx(4 / 16)

    def test_gini_zero_when_equal(self):
        block = make_block([(1, 10)] * 5 + [(2, 10)] * 5)
        assert profile_block(block).source_gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_rises_with_concentration(self):
        equal = profile_block(make_block([(1, 0)] * 5 + [(2, 0)] * 5))
        skewed = profile_block(make_block([(1, 0)] * 9 + [(2, 0)] * 1))
        assert skewed.source_gini > equal.source_gini

    def test_top_decile_share(self):
        # 10 sources; the top one (decile) carries 50% of volume.
        pairs = [(0, 0)] * 45
        for s in range(1, 10):
            pairs += [(s, 0)] * 5
        profile = profile_block(make_block(pairs))
        assert profile.top_decile_volume_share == pytest.approx(0.5)


class TestSourceTurnover:
    def test_zero_when_identical(self):
        block = make_block([(1, 10), (2, 20)])
        assert source_turnover(block, block) == 0.0

    def test_full_when_disjoint(self):
        a = make_block([(1, 10)])
        b = make_block([(2, 10), (3, 10)])
        assert source_turnover(a, b) == 1.0

    def test_partial(self):
        a = make_block([(1, 10)])
        b = make_block([(1, 10), (2, 10), (2, 10), (2, 10)])
        assert source_turnover(a, b) == pytest.approx(0.75)

    def test_empty_b(self):
        assert source_turnover(make_block([(1, 1)]), make_block([])) == 0.0


class TestCoverageCeiling:
    def test_all_above_threshold(self):
        block = make_block([(1, 10)] * 12)
        assert coverage_ceiling(block, support_threshold=10) == 1.0

    def test_mixed(self):
        block = make_block([(1, 10)] * 12 + [(2, 10)] * 3)
        assert coverage_ceiling(block, support_threshold=10) == pytest.approx(12 / 15)

    def test_empty(self):
        assert coverage_ceiling(make_block([])) == 0.0

    def test_ceiling_bounds_measured_coverage(self):
        """Property on real trace data: no rule set beats the ceiling."""
        from repro.core.evaluation import ruleset_test
        from repro.core.generation import generate_ruleset
        from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator
        from repro.trace.blocks import blocks_from_arrays

        cfg = MonitorTraceConfig(block_size=1000, n_neighbors=30, n_categories=24)
        gen = MonitorTraceGenerator(cfg, seed=3)
        arrays = gen.generate_pair_arrays(2000)
        blocks = blocks_from_arrays(arrays.source, arrays.replier, block_size=1000)
        rs = generate_ruleset(blocks[0], min_support_count=10)
        self_test = ruleset_test(rs, blocks[0])
        assert self_test.coverage <= coverage_ceiling(blocks[0]) + 1e-9


class TestDecayCurves:
    def test_curve_shapes(self):
        from repro.trace.analysis import decay_curves
        from repro.trace.blocks import blocks_from_arrays
        from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

        cfg = MonitorTraceConfig(block_size=1000, n_neighbors=30, n_categories=24)
        gen = MonitorTraceGenerator(cfg, seed=8)
        arrays = gen.generate_pair_arrays(6000)
        blocks = blocks_from_arrays(arrays.source, arrays.replier, block_size=1000)
        curves = decay_curves(blocks, support_threshold=5)
        assert len(curves["coverage"]) == len(blocks) - 1
        assert all(0.0 <= v <= 1.0 for v in curves["coverage"])
        assert all(0.0 <= v <= 1.0 for v in curves["success"])
        # Rule sets only age: late success should not beat early success
        # by much (loose monotonicity under noise).
        assert curves["success"][-1] <= curves["success"][0] + 0.1

    def test_max_lag(self):
        from repro.trace.analysis import decay_curves
        from tests.conftest import make_block

        blocks = [make_block([(1, 10)] * 20, index=i) for i in range(5)]
        curves = decay_curves(blocks, support_threshold=2, max_lag=2)
        assert len(curves["coverage"]) == 2

    def test_requires_blocks(self):
        from repro.trace.analysis import decay_curves
        from tests.conftest import make_block

        with pytest.raises(ValueError):
            decay_curves([make_block([(1, 1)])])
