"""Saturation-curve ramp controller.

A single load level tells you almost nothing about capacity: the
interesting numbers — max sustainable throughput, the knee where tail
latency departs — only appear when offered load is *stepped* and each
step is measured independently.  :func:`run_ramp` does exactly that:
for each offered RPS in an increasing schedule it runs one fresh
open-loop :class:`~repro.scale.loadgen.LoadGenerator` window against
the cluster and records latency percentiles, error/shed rates, and
open-loop fidelity.  :func:`saturation_summary` then reads the curve
the way a capacity plan would: the **max sustainable QPS** is the
highest offered step that stayed within the p99 bound and error
budget, normalised per core for cross-machine comparison.

Steps reuse the same cluster on purpose — rules learned at low load
keep routing at high load, exactly as a warm production deployment
would behave.  What must *not* leak between steps is load-generator
state, so every step builds a new generator (fresh histogram, fresh
schedule seeded ``seed + step``) and shed/drop counts are reported as
*deltas* of the cluster's counters across the step window.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

from repro.obs.logging import get_logger
from repro.scale.loadgen import LoadConfig, LoadGenerator

__all__ = [
    "run_ramp",
    "run_ramp_async",
    "saturation_summary",
    "format_saturation_markdown",
]

_log = get_logger("scale.ramp")

#: cluster counters whose per-step deltas matter for the curve.
_DELTA_COUNTERS = (
    "queries_shed",
    "frames_dropped",
    "queries_rule_routed",
    "queries_flooded",
)


async def run_ramp_async(
    addresses: Sequence[tuple[str, int]],
    vocabulary: Sequence[str],
    rps_steps: Sequence[float],
    *,
    step_duration: float = 10.0,
    seed: int = 0,
    load_config: LoadConfig | None = None,
    cluster_totals: Callable[[], dict[str, int]] | None = None,
    settle_seconds: float = 0.5,
) -> list[dict]:
    """Run one open-loop window per offered-RPS step; returns step dicts.

    ``cluster_totals``, when given (usually
    :meth:`ClusterSupervisor.totals`), is sampled before and after each
    step so shed/drop/decision counts are attributed to the step that
    caused them.
    """
    base = load_config or LoadConfig(rps=1.0, duration=step_duration)
    steps: list[dict] = []
    for i, rps in enumerate(rps_steps):
        config = LoadConfig(
            rps=float(rps),
            duration=step_duration,
            seed=seed + i,
            mix=base.mix,
            think=base.think,
            think_sigma=base.think_sigma,
            request_timeout=base.request_timeout,
            max_ttl=base.max_ttl,
            trace_sample=base.trace_sample,
        )
        before = cluster_totals() if cluster_totals is not None else {}
        generator = LoadGenerator(addresses, vocabulary, config)
        started = time.monotonic()
        result = await generator.run()
        elapsed = time.monotonic() - started
        after = cluster_totals() if cluster_totals is not None else {}
        step = result.to_dict()
        step["step"] = i
        step["wall_seconds"] = round(elapsed, 3)
        step["cluster"] = {
            name: after.get(name, 0) - before.get(name, 0)
            for name in _DELTA_COUNTERS
            if after or before
        }
        steps.append(step)
        _log.info(
            "ramp step done",
            extra={
                "step": i,
                "offered_rps": rps,
                "achieved_rps": step["achieved_rps"],
                "p99": step["latency"]["p99_seconds"],
                "error_rate": step["error_rate"],
            },
        )
        if settle_seconds:
            # let in-flight floods and timers quiesce between steps so
            # a step's tail does not pollute its successor's latencies.
            import asyncio

            await asyncio.sleep(settle_seconds)
    return steps


def run_ramp(
    addresses: Sequence[tuple[str, int]],
    vocabulary: Sequence[str],
    rps_steps: Sequence[float],
    **kwargs,
) -> list[dict]:
    """Synchronous wrapper around :func:`run_ramp_async` for callers
    (benchmarks, CLI) that do not already run an event loop."""
    import asyncio

    return asyncio.run(
        run_ramp_async(addresses, vocabulary, rps_steps, **kwargs)
    )


def saturation_summary(
    steps: Sequence[dict],
    *,
    p99_bound: float = 1.0,
    max_error_rate: float = 0.05,
    n_processes: int = 1,
) -> dict:
    """Read the saturation curve: the max sustainable operating point.

    A step *sustains* its offered load when (1) p99 latency stayed
    within ``p99_bound`` seconds, (2) the combined timeout/error rate
    stayed within ``max_error_rate``, and (3) the generator's own
    schedule did not stretch beyond the open-loop tolerance (if the
    generator could not offer the load, the step proves nothing).  The
    max sustainable QPS is the highest *achieved* rate among sustaining
    steps; per-core divides by the worker process count.
    """
    sustained: list[dict] = []
    knee = None
    for step in steps:
        ok = (
            step["latency"]["p99_seconds"] <= p99_bound
            and step["error_rate"] <= max_error_rate
            and step["schedule_stretch"] <= 0.05
        )
        if ok:
            sustained.append(step)
        elif knee is None:
            knee = step["offered_rps"]
    max_qps = max((s["achieved_rps"] for s in sustained), default=0.0)
    return {
        "p99_bound_seconds": p99_bound,
        "max_error_rate": max_error_rate,
        "n_processes": n_processes,
        "steps_total": len(steps),
        "steps_sustained": len(sustained),
        "sustained_rps": [s["offered_rps"] for s in sustained],
        "first_unsustained_rps": knee,
        "max_sustainable_qps": round(max_qps, 2),
        "qps_per_core": round(max_qps / n_processes, 2) if n_processes else 0.0,
    }


def format_saturation_markdown(
    steps: Sequence[dict], summary: dict, *, title: str = "Saturation curve"
) -> str:
    """Render the curve as a Markdown table (CI artifact / PR comment)."""
    lines = [
        f"# {title}",
        "",
        f"- per-core figures normalised over "
        f"**{summary['n_processes']}** occupied core(s)",
        f"- gate: p99 ≤ {summary['p99_bound_seconds']:g}s, "
        f"error rate ≤ {summary['max_error_rate']:.0%}",
        f"- max sustainable: **{summary['max_sustainable_qps']:g} QPS** "
        f"({summary['qps_per_core']:g} QPS/core)",
        f"- first unsustained step: "
        f"{summary['first_unsustained_rps'] or '—'}",
        "",
        "| offered RPS | achieved | p50 (ms) | p95 (ms) | p99 (ms) "
        "| errors | shed | sustained |",
        "|---:|---:|---:|---:|---:|---:|---:|:---:|",
    ]
    sustained_rps = set(summary["sustained_rps"])
    for step in steps:
        latency = step["latency"]
        shed = step.get("cluster", {}).get("queries_shed", 0)
        lines.append(
            "| {offered:g} | {achieved:.1f} | {p50:.1f} | {p95:.1f} "
            "| {p99:.1f} | {errors:.1%} | {shed} | {ok} |".format(
                offered=step["offered_rps"],
                achieved=step["achieved_rps"],
                p50=latency["p50_seconds"] * 1e3,
                p95=latency["p95_seconds"] * 1e3,
                p99=latency["p99_seconds"] * 1e3,
                errors=step["error_rate"],
                shed=shed,
                ok="✓" if step["offered_rps"] in sustained_rps else "✗",
            )
        )
    lines.append("")
    return "\n".join(lines)
