"""The paper's four rule-set maintenance strategies.

Each class mirrors the pseudocode of §III-B (STATIC-RULESET,
SLIDING-WINDOW, LAZY-SLIDING-WINDOW, ADAPTIVE-SLIDING-WINDOW): a rule set
is generated from one block and tested against subsequent blocks; the
strategies differ only in *when* they regenerate.  All of them share the
generation parameters (support-prune threshold, optional top-k /
confidence pruning) through the common base class.

``run`` accepts any *iterable* of blocks — a list, or a one-shot
generator such as :meth:`repro.trace.store.TraceStoreReader.iter_blocks`.
Every strategy needs at most the previous block to regenerate from, so
streaming consumption retains O(1) blocks: a disk-resident trace far
larger than memory evaluates with the same results as the in-memory
path (regeneration that the eager loop performed after testing block
``b`` is deferred to just before testing ``b+1``, which produces the
identical rule sets because it only ever fires when a next block
exists).
"""

from __future__ import annotations

import abc
from dataclasses import replace
from time import perf_counter
from typing import Iterable, Iterator, Sequence

from repro.core.evaluation import RulesetTestResult, ruleset_test
from repro.core.rules import RuleSet
from repro.core.runner import StrategyRun, TrialResult
from repro.core.thresholds import RollingThreshold
from repro.obs.registry import get_global_registry
from repro.trace.blocks import PairBlock

__all__ = [
    "RulesetStrategy",
    "StaticRuleset",
    "SlidingWindow",
    "LazySlidingWindow",
    "AdaptiveSlidingWindow",
]


def _observe_block_timing(phase: str, strategy: str, seconds: float) -> None:
    """Record one per-block mining/test duration in the global registry.

    Block granularity (10k pairs per observation at paper scale) keeps
    the instrumentation cost invisible next to the work it measures;
    :func:`repro.experiments.report.offline_timings_section` surfaces
    the distributions in the markdown report.
    """
    get_global_registry().histogram(
        f"repro_offline_{phase}_seconds",
        f"Per-block {phase} duration in the offline simulator.",
        ("strategy",),
    ).labels(strategy).observe(seconds)


class RulesetStrategy(abc.ABC):
    """Base class: shared generation parameters and the run() contract."""

    name: str = "abstract"

    def __init__(
        self,
        *,
        min_support_count: int = 10,
        top_k: int | None = None,
        min_confidence: float = 0.0,
    ) -> None:
        self.min_support_count = int(min_support_count)
        self.top_k = top_k
        self.min_confidence = float(min_confidence)
        if self.min_support_count < 1:
            raise ValueError("min_support_count must be >= 1")

    def _generate(self, block: PairBlock) -> RuleSet:
        # Route through the content-addressed ruleset cache when one is
        # installed (repro.parallel.cache); with no cache this is plain
        # GENERATE-RULESET, and because mining is deterministic the cached
        # and uncached paths return identical rule sets.
        from repro.parallel.cache import cached_generate_ruleset

        t0 = perf_counter()
        ruleset = cached_generate_ruleset(
            block,
            min_support_count=self.min_support_count,
            top_k=self.top_k,
            min_confidence=self.min_confidence,
        )
        _observe_block_timing("mine", self.name, perf_counter() - t0)
        return ruleset

    def _test(self, ruleset: RuleSet, block: PairBlock) -> RulesetTestResult:
        t0 = perf_counter()
        result = ruleset_test(ruleset, block)
        _observe_block_timing("test", self.name, perf_counter() - t0)
        return result

    @abc.abstractmethod
    def run(self, blocks: Iterable[PairBlock]) -> StrategyRun:
        """Process the block stream and return the per-trial results.

        Every strategy trains on at least the first block, so the first
        *tested* block is the second one and a run needs >= 2 blocks.
        ``blocks`` may be a one-shot generator; strategies hold at most
        the previous block.
        """

    # -- partitioned evaluation ---------------------------------------------
    # A trace can be split across workers by contiguous block range
    # (repro.parallel.partition).  Each strategy declares which blocks
    # must *precede* a shard's scored range to reproduce the serial
    # rule-set state at the shard boundary, and run_partition() replays
    # warm-up + scored blocks, keeping only the scored trials.

    def partition_warmup(
        self, scored_start: int, block_pairs: Sequence[int] | None = None
    ) -> Sequence[int]:
        """Block indices needed before ``scored_start`` to seed state.

        The returned indices are streamed (in order) ahead of the scored
        range; trials they produce are discarded by
        :meth:`run_partition`.  The base implementation is the safe
        fallback — the full prefix, which replays the serial run exactly
        and is therefore always bit-identical (used by strategies whose
        state is unboundedly history-dependent, e.g. adaptive
        thresholds).  Subclasses with bounded lookback override it.

        ``block_pairs`` (per-block pair counts, e.g. from a store's
        footer index) is only consulted by strategies whose warm-up is
        denominated in pairs rather than blocks.
        """
        if scored_start < 1:
            raise ValueError("scored_start must be >= 1 (block 0 only trains)")
        return range(0, scored_start)

    def run_partition(
        self, blocks: Iterable[PairBlock], scored_start: int
    ) -> StrategyRun:
        """Run over warm-up + scored blocks, keeping only scored trials.

        ``blocks`` must stream exactly
        ``partition_warmup(scored_start)`` followed by the shard's
        scored range.  ``n_generations`` of the returned partial run
        counts only generations the serial loop would have performed
        *inside* the scored range (a generation fires at the trial whose
        ``fresh_ruleset`` flag it sets, so the kept-fresh count is that
        attribution), which is what makes
        :func:`~repro.core.runner.merge_runs` totals equal the serial
        run's.
        """
        if scored_start < 1:
            raise ValueError("scored_start must be >= 1 (block 0 only trains)")
        run = self.run(blocks)
        kept = tuple(t for t in run.trials if t.block_index >= scored_start)
        return StrategyRun(
            self.name,
            kept,
            n_generations=sum(1 for t in kept if t.fresh_ruleset),
        )

    def _stream(self, blocks: Iterable[PairBlock]) -> tuple[PairBlock, Iterator[PairBlock]]:
        """Split a block stream into (training block, test-block iterator).

        Raises up front when the stream holds fewer than two blocks, so
        list and generator inputs fail identically.
        """
        it = iter(blocks)
        first = next(it, None)
        second = next(it, None)
        if first is None or second is None:
            n = 0 if first is None else 1
            raise ValueError(
                f"{self.name} needs at least 2 blocks (1 train + 1 test), "
                f"got {n}"
            )

        def rest() -> Iterator[PairBlock]:
            yield second
            yield from it

        return first, rest()


class StaticRuleset(RulesetStrategy):
    """STATIC-RULESET: one rule set from the first block, used forever."""

    name = "static"

    def partition_warmup(
        self, scored_start: int, block_pairs: Sequence[int] | None = None
    ) -> Sequence[int]:
        # The only state is the rule set mined from block 0; a shard
        # anywhere in the trace needs just that one training block.
        super().partition_warmup(scored_start, block_pairs)
        return (0,)

    def run_partition(
        self, blocks: Iterable[PairBlock], scored_start: int
    ) -> StrategyRun:
        run = super().run_partition(blocks, scored_start)
        if scored_start > 1 and run.trials and run.trials[0].fresh_ruleset:
            # The shard re-mined block 0 locally, so its first trial
            # reports a fresh rule set — but serially only block 1's
            # trial follows the (single) generation.  Clear the flag so
            # merged partials equal the serial run, and leave the one
            # real generation to the shard that scored block 1.
            first = replace(run.trials[0], fresh_ruleset=False)
            run = StrategyRun(
                run.strategy_name, (first,) + run.trials[1:], n_generations=0
            )
        return run

    def run(self, blocks: Iterable[PairBlock]) -> StrategyRun:
        train, rest = self._stream(blocks)
        ruleset = self._generate(train)
        trials = []
        for i, block in enumerate(rest, start=1):
            trials.append(
                TrialResult(
                    block_index=block.index,
                    result=self._test(ruleset, block),
                    fresh_ruleset=(i == 1),
                    ruleset_size=len(ruleset),
                )
            )
        return StrategyRun(self.name, tuple(trials), n_generations=1)


class SlidingWindow(RulesetStrategy):
    """SLIDING-WINDOW: regenerate from block b-1 before testing block b."""

    name = "sliding"

    def partition_warmup(
        self, scored_start: int, block_pairs: Sequence[int] | None = None
    ) -> Sequence[int]:
        # The rule set tested against block b is always mined from block
        # b-1: one overlapping prefix block fully seeds the shard.
        super().partition_warmup(scored_start, block_pairs)
        return (scored_start - 1,)

    def run(self, blocks: Iterable[PairBlock]) -> StrategyRun:
        previous, rest = self._stream(blocks)
        trials = []
        n_generations = 0
        for block in rest:
            ruleset = self._generate(previous)
            n_generations += 1
            trials.append(
                TrialResult(
                    block_index=block.index,
                    result=self._test(ruleset, block),
                    fresh_ruleset=True,
                    ruleset_size=len(ruleset),
                )
            )
            previous = block
        return StrategyRun(self.name, tuple(trials), n_generations=n_generations)


class LazySlidingWindow(RulesetStrategy):
    """LAZY-SLIDING-WINDOW: regenerate only every ``laziness`` blocks.

    The rule set generated from block ``b`` is used for the next
    ``laziness`` trials (paper default: 10), then replaced with one built
    from the most recent block.
    """

    name = "lazy"

    def __init__(self, *, laziness: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        if laziness < 1:
            raise ValueError("laziness must be >= 1")
        self.laziness = int(laziness)

    def partition_warmup(
        self, scored_start: int, block_pairs: Sequence[int] | None = None
    ) -> Sequence[int]:
        # The regeneration schedule is fixed (every ``laziness`` trials
        # from block 0), so the serial rule set in force at block b was
        # mined from the last schedule point g <= b-1.  Streaming from g
        # re-aligns the shard's trials-since-generation counter with the
        # serial schedule: at most ``laziness`` warm-up blocks.
        super().partition_warmup(scored_start, block_pairs)
        g = ((scored_start - 1) // self.laziness) * self.laziness
        return range(g, scored_start)

    def run(self, blocks: Iterable[PairBlock]) -> StrategyRun:
        previous, rest = self._stream(blocks)
        ruleset = self._generate(previous)
        n_generations = 1
        trials = []
        trials_since_generation = 0
        for block in rest:
            # Deferred regeneration: the eager loop regenerated from the
            # just-tested block only when another block followed; firing
            # at the top of the next iteration (from the retained
            # previous block) is the streaming-safe equivalent.
            if trials_since_generation >= self.laziness:
                ruleset = self._generate(previous)
                n_generations += 1
                trials_since_generation = 0
            fresh = trials_since_generation == 0
            trials.append(
                TrialResult(
                    block_index=block.index,
                    result=self._test(ruleset, block),
                    fresh_ruleset=fresh,
                    ruleset_size=len(ruleset),
                )
            )
            trials_since_generation += 1
            previous = block
        return StrategyRun(self.name, tuple(trials), n_generations=n_generations)


class AdaptiveSlidingWindow(RulesetStrategy):
    """ADAPTIVE-SLIDING-WINDOW: regenerate when quality drops below thresholds.

    Coverage and success thresholds are rolling means of the previous
    ``history`` measured values (paper: 10 and 50), starting from
    ``initial_threshold`` (paper: 0.7).  After testing a block, if either
    measured value fell below its threshold, a new rule set is generated
    from that block — exactly the pseudocode's
    ``if results[coverage] < ct ... then R <- GENERATE-RULESET(b)``.
    """

    name = "adaptive"

    def __init__(
        self,
        *,
        history: int = 10,
        initial_threshold: float = 0.7,
        slack: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.history = int(history)
        self.initial_threshold = float(initial_threshold)
        self.slack = float(slack)
        if self.history < 1:
            raise ValueError("history must be >= 1")

    # partition_warmup: inherited full-prefix fallback.  The rolling
    # coverage/success thresholds observe every trial, and each observed
    # value depends on the rule set then in force — whose generation
    # points are data-dependent — so the state at a shard boundary has
    # no bounded lookback.  Replaying the full prefix is the only
    # bit-identical warm-up; partitioned adaptive runs therefore gain
    # correctness/uniform plumbing, not wall-clock (documented in
    # docs/performance.md).

    def run(self, blocks: Iterable[PairBlock]) -> StrategyRun:
        previous, rest = self._stream(blocks)
        coverage_threshold = RollingThreshold(
            self.history, initial=self.initial_threshold, slack=self.slack
        )
        success_threshold = RollingThreshold(
            self.history, initial=self.initial_threshold, slack=self.slack
        )
        ruleset = self._generate(previous)
        n_generations = 1
        fresh = True
        regenerate = False
        trials = []
        for block in rest:
            if regenerate:
                # Deferred from the previous trial's threshold breach —
                # fires only when another block arrived, matching the
                # eager loop's "regenerate unless this was the last
                # block" guard.
                ruleset = self._generate(previous)
                n_generations += 1
                fresh = True
                regenerate = False
            ct = coverage_threshold.current()
            st = success_threshold.current()
            result = self._test(ruleset, block)
            trials.append(
                TrialResult(
                    block_index=block.index,
                    result=result,
                    fresh_ruleset=fresh,
                    ruleset_size=len(ruleset),
                )
            )
            coverage_threshold.observe(result.coverage)
            success_threshold.observe(result.success)
            fresh = False
            regenerate = result.coverage < ct or result.success < st
            previous = block
        return StrategyRun(self.name, tuple(trials), n_generations=n_generations)
