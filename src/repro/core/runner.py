"""Strategy run records.

A strategy consumes the trace's block sequence and produces a
:class:`StrategyRun`: one :class:`TrialResult` per tested block plus
aggregate statistics.  The aggregates mirror how the paper reports results
("the average coverage was 0.80", "new rule sets were generated every 1.7
blocks").

Partitioned evaluation (:mod:`repro.parallel.partition`) splits one trace
across workers by block range; each worker produces a partial
:class:`StrategyRun` over its scored range, and :func:`merge_runs`
reassembles the partials into the run the serial loop would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.evaluation import RulesetTestResult
from repro.trace.blocks import PairBlock
from repro.utils.stats import SeriesSummary, summarize_series

__all__ = ["TrialResult", "StrategyRun", "run_strategy", "merge_runs"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of testing one block.

    ``fresh_ruleset`` is True when the rule set used for this trial was
    generated immediately before it (i.e. the trial exercised up-to-date
    rules).  ``ruleset_size`` is the number of rules in force.
    """

    block_index: int
    result: RulesetTestResult
    fresh_ruleset: bool
    ruleset_size: int

    @property
    def coverage(self) -> float:
        return self.result.coverage

    @property
    def success(self) -> float:
        return self.result.success


@dataclass(frozen=True)
class StrategyRun:
    """A full strategy execution over a trace."""

    strategy_name: str
    trials: tuple[TrialResult, ...]
    n_generations: int

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def coverage_series(self) -> list[float]:
        return [t.coverage for t in self.trials]

    @property
    def success_series(self) -> list[float]:
        return [t.success for t in self.trials]

    @property
    def average_coverage(self) -> float:
        """Mean per-trial coverage; ``nan`` for a run with no trials.

        ``nan`` marks "no data" for display, but must never be folded
        into cross-partition aggregates — :func:`merge_runs` skips empty
        partials instead of averaging them.
        """
        series = self.coverage_series
        return sum(series) / len(series) if series else float("nan")

    @property
    def average_success(self) -> float:
        series = self.success_series
        return sum(series) / len(series) if series else float("nan")

    @property
    def blocks_per_generation(self) -> float:
        """Mean number of tested blocks per rule-set generation.

        The paper's "new rule sets were generated every 1.7 blocks" metric;
        ``inf`` if the strategy never generated a rule set.
        """
        if self.n_generations == 0:
            return float("inf")
        return self.n_trials / self.n_generations

    def coverage_summary(self) -> SeriesSummary:
        return summarize_series(self.coverage_series)

    def success_summary(self) -> SeriesSummary:
        return summarize_series(self.success_series)

    def merge(self, *others: "StrategyRun") -> "StrategyRun":
        """Merge this run with partial runs over other block ranges.

        Convenience instance form of :func:`merge_runs`.
        """
        return merge_runs([self, *others])

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"{self.strategy_name}: trials={self.n_trials} "
            f"avg_coverage={self.average_coverage:.3f} "
            f"avg_success={self.average_success:.3f} "
            f"generations={self.n_generations}"
        )


def merge_runs(runs: Iterable[StrategyRun]) -> StrategyRun:
    """Reassemble partial runs over disjoint block ranges into one run.

    Trials are concatenated in block order and ``n_generations`` summed,
    so merging every partition of a trace reproduces the serial run
    bit-for-bit (each partial counts only the generations the serial
    loop would have performed inside its scored range).

    Empty partials are skipped rather than merged: a partition whose
    scored range held only warm-up blocks contributes no trials, and its
    ``nan`` aggregate averages must not poison the merged aggregates.
    Merging runs of *different* strategies raises ``ValueError`` — a
    mixed merge is always a caller bug, and silently concatenating would
    produce a run no strategy ever executed.
    """
    runs = list(runs)
    if not runs:
        raise ValueError("merge_runs needs at least one run")
    names = {run.strategy_name for run in runs}
    if len(names) > 1:
        raise ValueError(
            f"cannot merge runs of different strategies: {sorted(names)}"
        )
    name = runs[0].strategy_name
    partials = sorted(
        (run for run in runs if run.n_trials),
        key=lambda run: run.trials[0].block_index,
    )
    if not partials:
        return StrategyRun(name, (), n_generations=0)
    trials: list[TrialResult] = []
    for partial in partials:
        trials.extend(partial.trials)
    indices = [t.block_index for t in trials]
    if any(b <= a for a, b in zip(indices, indices[1:])):
        raise ValueError(
            "partial runs overlap or repeat block indices; partitions "
            "must cover disjoint block ranges"
        )
    return StrategyRun(
        name,
        tuple(trials),
        n_generations=sum(partial.n_generations for partial in partials),
    )


def run_strategy(strategy, blocks: Iterable[PairBlock]) -> StrategyRun:
    """Execute ``strategy`` over ``blocks`` (thin convenience wrapper).

    ``blocks`` may be any iterable — a list or a one-shot generator such
    as a trace-store block stream; strategies retain O(1) blocks.
    """
    return strategy.run(blocks)
