"""Tests for repro.network.servent (wire-level Gnutella node)."""

import pytest

from repro.network.protocol import decode_message, PAYLOAD_PONG
from repro.network.servent import MonitorServent, Servent, SharedFile


def wire_line(n=3, libraries=None):
    """Servents 0-1-2-... in a line; connection ids are peer indices.

    Connection id convention in this harness: servent ``i`` names its link
    to servent ``j`` simply ``j`` (ids are per-servent namespaces).
    """
    libraries = libraries or {}
    servents = [
        Servent(1000 + i, library=libraries.get(i, []), max_ttl=7)
        for i in range(n)
    ]
    for i in range(n - 1):
        servents[i].connect(i + 1)
        servents[i + 1].connect(i)
    return servents


def pump(servents, outgoing, sender_index):
    """Deliver frames until quiescent; returns all frames ever sent."""
    all_frames = []
    queue = [(sender_index, conn, frame) for conn, frame in outgoing]
    while queue:
        src, dst, frame = queue.pop(0)
        all_frames.append((src, dst, frame))
        replies = servents[dst].handle_frame(src, frame)
        queue.extend((dst, conn, f) for conn, f in replies)
    return all_frames


class TestSharedFile:
    def test_keyword_match(self):
        f = SharedFile(1, "Classic Jazz Session Vol 2.mp3", 4000)
        assert f.matches("jazz session")
        assert f.matches("CLASSIC")
        assert not f.matches("rock")


class TestServentQueries:
    def test_query_finds_remote_file_and_routes_hit_back(self):
        libraries = {2: [SharedFile(5, "rare tundra recording.ogg", 1 << 20)]}
        servents = wire_line(3, libraries)
        guid, frames = servents[0].issue_query("tundra")
        pump(servents, frames, 0)
        assert len(servents[0].results) == 1
        hit = servents[0].results[0]
        assert hit.file_index == 5
        assert hit.servent_guid == 1002

    def test_intermediate_node_never_learns_origin(self):
        """Anonymity: node 1 only has GUID->connection state."""
        libraries = {2: [SharedFile(5, "target file.dat", 100)]}
        servents = wire_line(3, libraries)
        guid, frames = servents[0].issue_query("target")
        pump(servents, frames, 0)
        # Node 1's route table maps the GUID to connection 0, not to any
        # notion of "servent 0 issued this".
        assert servents[1].query_routes.route_for(guid) == 0

    def test_no_match_no_results(self):
        servents = wire_line(3)
        _guid, frames = servents[0].issue_query("anything")
        pump(servents, frames, 0)
        assert servents[0].results == []

    def test_ttl_limits_reach(self):
        libraries = {3: [SharedFile(9, "distant gem.flac", 100)]}
        servents = wire_line(4, libraries)
        for s in servents:
            s.max_ttl = 2  # query dies after two hops
        _guid, frames = servents[0].issue_query("gem")
        pump(servents, frames, 0)
        assert servents[0].results == []

    def test_duplicate_query_dropped_on_cycle(self):
        # Triangle 0-1, 1-2, 0-2: the query reaches 2 via both paths; the
        # second copy must be dropped, and exactly one hit comes back.
        servents = [
            Servent(2000 + i, library=[], max_ttl=7) for i in range(3)
        ]
        servents[2].library.append(SharedFile(1, "cycle test.txt", 10))
        for a, b in [(0, 1), (1, 2), (0, 2)]:
            servents[a].connect(b)
            servents[b].connect(a)
        _guid, frames = servents[0].issue_query("cycle")
        pump(servents, frames, 0)
        assert len(servents[0].results) == 1

    def test_multiple_matching_files_multiple_hits(self):
        libraries = {
            1: [
                SharedFile(1, "mesa live set one.mp3", 1),
                SharedFile(2, "mesa live set two.mp3", 1),
            ]
        }
        servents = wire_line(2, libraries)
        _guid, frames = servents[0].issue_query("mesa live")
        pump(servents, frames, 0)
        assert len(servents[0].results) == 2


class TestServentPings:
    def test_ping_collects_pongs(self):
        servents = wire_line(3)
        _guid, frames = servents[0].issue_ping()
        all_frames = pump(servents, frames, 0)
        pongs_to_origin = [
            f for src, dst, f in all_frames
            if dst == 0 and decode_message(f)[0].payload_type == PAYLOAD_PONG
        ]
        assert len(pongs_to_origin) == 2  # both other servents answered


class TestServentValidation:
    def test_unknown_connection_rejected(self):
        s = Servent(1)
        with pytest.raises(ValueError):
            s.handle_frame(9, b"")

    def test_bad_guid(self):
        with pytest.raises(ValueError):
            Servent(1 << 128)

    def test_negative_connection(self):
        with pytest.raises(ValueError):
            Servent(1).connect(-1)


class TestMonitorServent:
    def test_captures_queries_and_replies(self):
        libraries = {2: [SharedFile(5, "observed item.dat", 100)]}
        servents = [
            Servent(3000, library=[]),
            MonitorServent(3001),
            Servent(3002, library=libraries[2]),
        ]
        for i in range(2):
            servents[i].connect(i + 1)
            servents[i + 1].connect(i)
        guid, frames = servents[0].issue_query("observed")
        pump(servents, frames, 0)
        monitor = servents[1]
        assert len(monitor.query_log) == 1
        assert monitor.query_log[0].guid == guid
        assert monitor.query_log[0].source == 0
        assert len(monitor.reply_log) == 1
        assert monitor.reply_log[0].guid == guid
        assert monitor.reply_log[0].replier == 2
        assert monitor.reply_log[0].host == 3002

    def test_capture_feeds_the_paper_pipeline(self):
        """Wire capture -> store -> dedup -> join -> pairs (schema parity)."""
        from repro.store.table import Table
        from repro.trace.dedup import dedup_queries, dedup_replies
        from repro.trace.pairing import build_pair_table
        from repro.trace.records import QUERY_COLUMNS, REPLY_COLUMNS

        libraries = {2: [SharedFile(5, "pipeline target.dat", 100)]}
        servents = [
            Servent(4000),
            MonitorServent(4001),
            Servent(4002, library=libraries[2]),
        ]
        for i in range(2):
            servents[i].connect(i + 1)
            servents[i + 1].connect(i)
        for _ in range(5):
            _guid, frames = servents[0].issue_query("pipeline")
            pump(servents, frames, 0)
        monitor = servents[1]
        queries = Table("queries", QUERY_COLUMNS)
        queries.extend(rec.as_row() for rec in monitor.query_log)
        replies = Table("replies", REPLY_COLUMNS)
        replies.extend(rec.as_row() for rec in monitor.reply_log)
        pairs = build_pair_table(
            dedup_queries(queries), dedup_replies(replies)
        )
        assert len(pairs) == 5
        assert set(pairs.column("source")) == {0}
        assert set(pairs.column("replier")) == {2}


class TestRuleRoutedServent:
    def _star_with_rule_router(self):
        """Leaves 0,2,3 around rule-router 1; leaf 2 holds 'jazz', 3 'mesa'."""
        from repro.network.servent import RuleRoutedServent

        servents = {
            0: Servent(5000),
            1: RuleRoutedServent(5001, top_k=1, min_support_count=2),
            2: Servent(5002, library=[SharedFile(1, "smooth jazz.mp3", 9)]),
            3: Servent(5003, library=[SharedFile(2, "mesa sunrise.flac", 9)]),
        }
        for leaf in (0, 2, 3):
            servents[leaf].connect(1)
            servents[1].connect(leaf)
        return servents

    def _pump(self, servents, frames, sender):
        count = 0
        queue = [(sender, conn, frame) for conn, frame in frames]
        while queue:
            src, dst, frame = queue.pop(0)
            count += 1
            for conn, out in servents[dst].handle_frame(src, frame):
                queue.append((dst, conn, out))
        return count

    def test_learns_rules_from_routed_hits(self):
        servents = self._star_with_rule_router()
        for _ in range(3):
            _guid, frames = servents[0].issue_query("jazz")
            self._pump(servents, frames, 0)
        router = servents[1]
        assert router.rules.consequents(0) == [2]

    def test_rule_narrows_forwarding(self):
        servents = self._star_with_rule_router()
        # Warm up: learn that connection 0's queries resolve via 2.
        for _ in range(3):
            _guid, frames = servents[0].issue_query("jazz")
            self._pump(servents, frames, 0)
        before = len(servents[0].results)
        _guid, frames = servents[0].issue_query("jazz")
        n_frames = self._pump(servents, frames, 0)
        # Covered: router sends only to connection 2 (not 3):
        # origin->router, router->2, hit 2->router, router->origin = 4.
        assert n_frames == 4
        assert len(servents[0].results) == before + 1

    def test_uncovered_connection_still_floods(self):
        servents = self._star_with_rule_router()
        _guid, frames = servents[3].issue_query("jazz")
        n_frames = self._pump(servents, frames, 3)
        # 3->router, router floods to 0 and 2, hit back 2->router->3: 5.
        assert n_frames == 5
        assert len(servents[3].results) == 1

    def test_interoperates_with_vanilla_servents(self):
        """Mixed deployment: correctness preserved for rule-covered paths."""
        servents = self._star_with_rule_router()
        for _ in range(4):
            _guid, frames = servents[0].issue_query("mesa")
            self._pump(servents, frames, 0)
        # Rules for connection 0 point at 3 (mesa provider); jazz queries
        # from 0 are now misdirected to 3 first, but k=1 with no further
        # hops means a miss — the trade-off §III-B's per-query fallback
        # exists to cover (not modelled at the wire level here).
        assert servents[1].rules.consequents(0, 1) == [3]
