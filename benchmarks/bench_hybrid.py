"""Bench `hybrid`: §VI — shortcuts with rules as the pre-flood last chance.

Paper: "association rules could be used to route queries that have not
been successfully replied to when using the shortcuts.  This would serve
as one last chance to avoid flooding."
"""

from benchmarks.conftest import run_and_report


def test_hybrid_shortcuts_rules(benchmark):
    run_and_report(benchmark, "hybrid")
