"""Durable rule state: snapshot + WAL-tail lifecycle for one servent.

:class:`PersistentState` owns one state directory and runs the classic
checkpoint/journal protocol over it:

* every observed (query-source, reply-source) pair is appended to the
  current WAL segment *as it is pushed* into the live counts;
* :meth:`checkpoint` freezes the counts into a fingerprinted snapshot,
  rotates to a fresh WAL segment, and deletes the segments the
  snapshot just made redundant (compaction) — steady-state disk usage
  is one snapshot plus the journal written since it;
* :meth:`recover` loads the newest *valid* snapshot (corrupt ones are
  skipped, falling back to older generations), replays the WAL tail on
  top, and truncates a torn final record instead of failing — the
  invariant is that recovery never loses an fsynced record and never
  fabricates one.

Directory layout (sequence numbers are monotonic and shared)::

    state_dir/
      snap-00000003.snap    # counts after every pair in segments <= 3
      wal-00000004.wal      # pairs observed since that snapshot

The obs registry (optional) gets checkpoint/recovery timings and WAL
volume counters, labelled by node.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from time import perf_counter

from repro.obs.logging import get_logger
from repro.persist.snapshot import (
    SnapshotError,
    fingerprint_counts,
    load_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.persist.wal import WalWriter, read_wal, wal_header

__all__ = ["PersistentState", "RecoveryInfo", "inspect_state_dir"]

_log = get_logger("persist")

_SNAP_RE = re.compile(r"^snap-(\d{8})\.snap$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.wal$")


@dataclass(frozen=True)
class RecoveryInfo:
    """What one :meth:`PersistentState.recover` run found and rebuilt."""

    #: True when a snapshot was loaded (False = cold start or WAL-only).
    restored: bool
    #: sequence number of the snapshot used (None when none was valid).
    snapshot_seq: int | None
    #: rules at/above threshold inside that snapshot.
    snapshot_rules: int
    #: WAL segments and records replayed on top of the snapshot.
    segments_replayed: int
    records_replayed: int
    #: True when a torn/corrupt record forced a tail truncation.
    truncated: bool
    #: rules at/above threshold after replay.
    n_rules: int
    #: blake2b fingerprint of the recovered counts state.
    fingerprint: str
    #: wall-clock recovery duration.
    seconds: float

    def as_dict(self) -> dict:
        return {
            "restored": self.restored,
            "snapshot_seq": self.snapshot_seq,
            "snapshot_rules": self.snapshot_rules,
            "segments_replayed": self.segments_replayed,
            "records_replayed": self.records_replayed,
            "truncated": self.truncated,
            "n_rules": self.n_rules,
            "fingerprint": self.fingerprint,
            "seconds": self.seconds,
        }


def _scan(state_dir: str, pattern: re.Pattern) -> list[tuple[int, str]]:
    """(seq, path) entries matching ``pattern``, ascending by seq."""
    found = []
    for name in os.listdir(state_dir):
        match = pattern.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(state_dir, name)))
    found.sort()
    return found


class PersistentState:
    """Snapshot + pair-WAL durability for one servent's rule counts."""

    def __init__(
        self,
        state_dir: str,
        *,
        fsync: str = "interval",
        fsync_interval: float = 1.0,
        label: str = "",
        registry=None,
    ) -> None:
        self.state_dir = state_dir
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.label = label or state_dir
        os.makedirs(state_dir, exist_ok=True)
        self._writer: WalWriter | None = None
        self._seq = 0  # current WAL segment sequence number
        self._closed = False
        if registry is None:
            from repro.obs.registry import NullRegistry

            registry = NullRegistry()
        node = str(self.label)
        self._wal_records = registry.counter(
            "repro_persist_wal_records_total",
            "Pair observations journaled to the write-ahead log.",
            ("node",),
        ).labels(node)
        self._wal_bytes = registry.counter(
            "repro_persist_wal_bytes_total",
            "Bytes appended to the write-ahead log.",
            ("node",),
        ).labels(node)
        self._checkpoints = registry.counter(
            "repro_persist_checkpoints_total",
            "Snapshots taken (each rotates and compacts the WAL).",
            ("node",),
        ).labels(node)
        self._checkpoint_seconds = registry.histogram(
            "repro_persist_checkpoint_seconds",
            "Time to snapshot the counts and rotate the WAL.",
            ("node",),
        ).labels(node)
        self._recovery_seconds = registry.histogram(
            "repro_persist_recovery_seconds",
            "Time to load a snapshot and replay the WAL tail.",
            ("node",),
        ).labels(node)
        self._recovered_rules = registry.gauge(
            "repro_persist_recovered_rules",
            "Rules at/above threshold right after the last recovery.",
            ("node",),
        ).labels(node)

    # -- paths ------------------------------------------------------------
    def _wal_path(self, seq: int) -> str:
        return os.path.join(self.state_dir, f"wal-{seq:08d}.wal")

    def _snap_path(self, seq: int) -> str:
        return os.path.join(self.state_dir, f"snap-{seq:08d}.snap")

    def snapshots(self) -> list[tuple[int, str]]:
        return _scan(self.state_dir, _SNAP_RE)

    def wal_segments(self) -> list[tuple[int, str]]:
        return _scan(self.state_dir, _WAL_RE)

    def has_state(self) -> bool:
        """Any durable state on disk (snapshot or journaled pairs)?"""
        return bool(self.snapshots() or self.wal_segments())

    # -- recovery ---------------------------------------------------------
    def recover(self, rules) -> tuple[object, RecoveryInfo]:
        """Rebuild live counts from disk; open a fresh WAL segment.

        Must be called once, before :meth:`record_pair` — on an empty
        state directory it degenerates to ``rules.make_counts()`` (a
        cold start with an empty journal).  Returns ``(counts, info)``.

        A snapshot that fails validation is skipped with a warning and
        the next-older one is tried; WAL segments newer than the chosen
        snapshot are replayed in order, and a torn or corrupt record
        truncates that segment (physically, so later tools see a clean
        log) and ends the replay.
        """
        t0 = perf_counter()
        counts = None
        snap_seq: int | None = None
        snap_rules = 0
        for seq, path in reversed(self.snapshots()):
            try:
                counts, header = load_snapshot(path)
            except (SnapshotError, OSError, KeyError, ValueError) as exc:
                _log.warning(
                    "skipping invalid snapshot",
                    extra={"path": path, "error": str(exc)},
                )
                continue
            snap_seq = seq
            snap_rules = int(header.get("n_rules", counts.n_rules()))
            if header["backend"] != rules.backend:
                _log.warning(
                    "snapshot backend differs from configured rules; "
                    "restoring the snapshot's",
                    extra={
                        "snapshot": header["backend"],
                        "configured": rules.backend,
                    },
                )
            break
        if counts is None:
            counts = rules.make_counts()
        segments_replayed = 0
        records_replayed = 0
        truncated = False
        max_seq = snap_seq or 0
        for seq, path in self.wal_segments():
            max_seq = max(max_seq, seq)
            if snap_seq is not None and seq <= snap_seq:
                continue  # already folded into the snapshot
            if truncated:
                _log.warning(
                    "WAL segment follows a truncated one; not replaying",
                    extra={"path": path},
                )
                continue
            result = read_wal(path)
            for source, replier in result.pairs:
                counts.push(source, replier)
            segments_replayed += 1
            records_replayed += len(result.pairs)
            if not result.clean:
                truncated = True
                os.truncate(path, result.good_offset)
                _log.warning(
                    "truncated torn WAL tail",
                    extra={
                        "path": path,
                        "good_bytes": result.good_offset,
                        "records": len(result.pairs),
                    },
                )
        self._seq = max_seq + 1
        self._writer = WalWriter(
            self._wal_path(self._seq),
            fsync=self.fsync,
            fsync_interval=self.fsync_interval,
        )
        info = RecoveryInfo(
            restored=snap_seq is not None,
            snapshot_seq=snap_seq,
            snapshot_rules=snap_rules,
            segments_replayed=segments_replayed,
            records_replayed=records_replayed,
            truncated=truncated,
            n_rules=counts.n_rules(),
            fingerprint=fingerprint_counts(counts),
            seconds=perf_counter() - t0,
        )
        self._recovery_seconds.observe(info.seconds)
        self._recovered_rules.set(float(info.n_rules))
        _log.info("recovered rule state", extra=info.as_dict())
        return counts, info

    # -- journaling -------------------------------------------------------
    def record_pair(self, source: int, replier: int) -> None:
        """Journal one observed pair (call :meth:`recover` first)."""
        if self._writer is None:
            raise RuntimeError("recover() must run before record_pair()")
        n = self._writer.append(source, replier)
        self._wal_records.inc()
        self._wal_bytes.inc(n)

    # -- checkpointing ----------------------------------------------------
    def checkpoint(self, counts) -> dict:
        """Snapshot ``counts``, rotate the WAL, compact old segments.

        Ordering is what makes this crash-consistent: the snapshot is
        durably in place (atomic rename) *before* any WAL segment it
        covers is deleted, so every instant in the procedure leaves the
        directory recoverable to the same state.
        """
        if self._writer is None:
            raise RuntimeError("recover() must run before checkpoint()")
        t0 = perf_counter()
        sealed = self._seq
        self._writer.close()
        header = write_snapshot(
            self._snap_path(sealed),
            counts,
            meta={"through_segment": sealed, "node": str(self.label)},
        )
        self._seq = sealed + 1
        self._writer = WalWriter(
            self._wal_path(self._seq),
            fsync=self.fsync,
            fsync_interval=self.fsync_interval,
        )
        for seq, path in self.wal_segments():
            if seq <= sealed:
                os.remove(path)
        for seq, path in self.snapshots():
            if seq < sealed:
                os.remove(path)
        elapsed = perf_counter() - t0
        self._checkpoints.inc()
        self._checkpoint_seconds.observe(elapsed)
        _log.debug(
            "checkpoint",
            extra={
                "seq": sealed,
                "n_rules": header["n_rules"],
                "seconds": elapsed,
            },
        )
        return header

    def close(self) -> None:
        """Seal the current WAL segment (no implicit checkpoint)."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            self._writer.close()

    @property
    def closed(self) -> bool:
        return self._closed


def inspect_state_dir(state_dir: str) -> dict:
    """Snapshot and WAL headers for one state directory, as plain data.

    Powers ``python -m repro persist inspect``; unreadable snapshot
    files are reported with their error rather than aborting the dump.
    """
    snapshots = []
    for _seq, path in _scan(state_dir, _SNAP_RE):
        try:
            snapshots.append({"path": path, **read_snapshot_header(path)})
        except (SnapshotError, OSError) as exc:
            snapshots.append({"path": path, "error": str(exc)})
    segments = [wal_header(path) for _seq, path in _scan(state_dir, _WAL_RE)]
    return {
        "state_dir": state_dir,
        "snapshots": snapshots,
        "wal_segments": segments,
    }
