"""Tests for the metrics registry and Prometheus exposition."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_global_registry,
    reset_global_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("c_total", "h").labels()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = MetricsRegistry().counter("c_total", "h").labels()
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_set_total_overwrites(self):
        c = MetricsRegistry().counter("c_total", "h").labels()
        c.inc(10)
        c.set_total(4)
        assert c.value == 4.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g", "h").labels()
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == 4.0

    def test_set_function_wins_at_read_time(self):
        g = MetricsRegistry().gauge("g", "h").labels()
        g.set(1.0)
        g.set_function(lambda: 42.0)
        assert g.value == 42.0
        g.set_function(None)
        assert g.value == 1.0


class TestHistogram:
    def test_observe_fills_correct_bucket(self):
        h = (
            MetricsRegistry()
            .histogram("h_seconds", "h", buckets=(0.1, 1.0))
            .labels()
        )
        h.observe(0.05)  # <= 0.1
        h.observe(0.5)  # <= 1.0
        h.observe(5.0)  # overflow
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)
        assert h.cumulative() == [(0.1, 1), (1.0, 2), (math.inf, 3)]

    def test_default_buckets_cover_microseconds(self):
        h = MetricsRegistry().histogram("h_seconds", "h").labels()
        assert h.buckets == DEFAULT_BUCKETS
        h.observe(2e-6)
        assert h.counts[1] == 1  # the 5e-6 bucket

    def test_boundary_value_lands_in_bucket(self):
        h = (
            MetricsRegistry()
            .histogram("h_seconds", "h", buckets=(1.0,))
            .labels()
        )
        h.observe(1.0)
        assert h.cumulative() == [(1.0, 1), (math.inf, 1)]


class TestFamilies:
    def test_children_are_cached(self):
        family = MetricsRegistry().counter("c_total", "h", ("node",))
        assert family.labels("1") is family.labels("1")
        assert family.labels("1") is not family.labels("2")

    def test_keyword_labels(self):
        family = MetricsRegistry().counter(
            "c_total", "h", ("node", "direction")
        )
        assert family.labels(node="3", direction="in") is family.labels(
            "3", "in"
        )

    def test_wrong_label_count_raises(self):
        family = MetricsRegistry().counter("c_total", "h", ("node",))
        with pytest.raises(ValueError):
            family.labels("1", "2")

    def test_mixed_positional_and_keyword_raises(self):
        family = MetricsRegistry().counter("c_total", "h", ("a", "b"))
        with pytest.raises(ValueError):
            family.labels("1", b="2")

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "h", ("node",))
        assert registry.counter("c_total", "other help", ("node",)) is first

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "h")
        with pytest.raises(ValueError):
            registry.gauge("x", "h")

    def test_label_schema_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "h", ("node",))
        with pytest.raises(ValueError):
            registry.counter("x", "h", ("peer",))

    def test_family_lookup(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", "h")
        assert registry.family("g") is family
        assert registry.family("missing") is None


class TestRender:
    def test_help_type_and_sample_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_frames_total", "Frames.", ("node",)).labels(
            "0"
        ).inc(7)
        text = registry.render()
        assert "# HELP repro_frames_total Frames." in text
        assert "# TYPE repro_frames_total counter" in text
        assert 'repro_frames_total{node="0"} 7' in text
        assert text.endswith("\n")

    def test_unlabeled_sample_has_no_braces(self):
        registry = MetricsRegistry()
        registry.gauge("g", "h").labels().set(1.5)
        assert "\ng 1.5\n" in registry.render()

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.histogram(
            "d_seconds", "h", ("node",), buckets=(0.5,)
        ).labels("2").observe(0.1)
        text = registry.render()
        assert 'd_seconds_bucket{node="2",le="0.5"} 1' in text
        assert 'd_seconds_bucket{node="2",le="+Inf"} 1' in text
        assert 'd_seconds_sum{node="2"} 0.1' in text
        assert 'd_seconds_count{node="2"} 1' in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h", ("who",)).labels('a"b\\c\nd').inc()
        assert 'c_total{who="a\\"b\\\\c\\nd"} 1' in registry.render()

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline two")
        assert "# HELP c_total line one\\nline two" in registry.render()

    def test_families_render_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z_total", "h").labels().inc()
        registry.counter("a_total", "h").labels().inc()
        text = registry.render()
        assert text.index("a_total") < text.index("z_total")


class TestNullRegistry:
    def test_disabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NullRegistry().enabled is False

    def test_instruments_noop_without_error(self):
        registry = NullRegistry()
        c = registry.counter("c_total", "h", ("node",)).labels("1")
        c.inc()
        c.set_total(5)
        g = registry.gauge("g", "h").labels()
        g.set(1)
        g.inc()
        g.dec()
        h = registry.histogram("h_seconds", "h").labels()
        h.observe(0.2)
        assert c.value == 0.0

    def test_render_empty_and_family_none(self):
        registry = NullRegistry()
        registry.counter("c_total", "h").labels().inc()
        assert registry.render() == ""
        assert registry.family("c_total") is None

    def test_shared_instance(self):
        assert NULL_REGISTRY.enabled is False


class TestGlobalRegistry:
    def test_reset_swaps_instance(self):
        first = get_global_registry()
        second = reset_global_registry()
        assert second is get_global_registry()
        assert second is not first
