"""Ablations over the design choices DESIGN.md calls out.

* ``topk-ablation`` — §III-B.1: "future queries can either be sent to a
  random subset of neighbors ... or sent to the k neighbors with the
  highest support."  Sweeps k for the Sliding Window engine, quantifying
  the traffic/quality trade-off behind the choice of k.
* ``churn-sensitivity`` — the paper stresses unstructured P2P churn
  throughout; this ablation measures how online association routing
  degrades as peer turnover accelerates (rule tables reset on churn).
"""

from __future__ import annotations

from repro.core.strategies import SlidingWindow
from repro.experiments.config import DEFAULT_SEED, current_scale
from repro.experiments.figures import generate_trace_blocks
from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow
from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.association import AssociationRoutingPolicy

__all__ = ["run_topk_ablation", "run_churn_sensitivity"]


def run_topk_ablation(
    *, seed: int = DEFAULT_SEED, ks: tuple = (1, 2, 3, None)
) -> ExperimentResult:
    """Success/coverage of Sliding Window as top-k consequents vary.

    Also evaluates the paper's *other* §III-B.1 option — forwarding to a
    uniformly random subset of the matching rules' consequents — which
    must underperform support-ordered top-k at the same k.
    """
    import numpy as np

    from repro.core.evaluation import ruleset_test_random_subset
    from repro.parallel.cache import cached_generate_ruleset
    from repro.utils.rng import as_generator

    scale = current_scale()
    blocks = generate_trace_blocks(scale.n_blocks, seed=seed)
    successes = {}
    coverages = {}
    rows = []
    for k in ks:
        run = SlidingWindow(top_k=k).run(blocks)
        label = "all" if k is None else str(k)
        successes[label] = run.average_success
        coverages[label] = run.average_coverage
        rows.append(
            ComparisonRow(
                f"sliding success @ top_k={label}",
                "rises with k",
                run.average_success,
            )
        )
    # Random-subset variant at k=2 (sliding schedule, stochastic choice).
    rng = as_generator(seed + 1)
    random_successes = []
    for b in range(1, len(blocks)):
        # Cached: the top_k=None sweep above already mined these blocks
        # with identical parameters, so with the engine's ruleset cache
        # active this replay is hit-only.
        ruleset = cached_generate_ruleset(blocks[b - 1])
        result = ruleset_test_random_subset(ruleset, blocks[b], k=2, rng=rng)
        random_successes.append(result.success)
    successes["random-2"] = float(np.mean(random_successes))
    rows.append(
        ComparisonRow(
            "sliding success @ random subset of 2 (§III-B.1 alternative)",
            "below top-2",
            successes["random-2"],
        )
    )
    rows.append(
        ComparisonRow(
            "top-2 beats random-2 (support ordering matters)",
            ">0",
            successes["2"] - successes["random-2"],
            band=(0.0, 1.0),
        )
    )
    ordered = [successes["all" if k is None else str(k)] for k in ks]
    monotone = all(a <= b + 0.02 for a, b in zip(ordered, ordered[1:]))
    rows.append(
        ComparisonRow(
            "success non-decreasing in k (more consequents, more matches)",
            "monotone",
            1.0 if monotone else 0.0,
            band=(1.0, 1.0),
        )
    )
    # k=2 should already capture most of the unlimited-rules success: a
    # source's replies concentrate on its top interests' paths (the
    # interest-based-locality premise).
    rows.append(
        ComparisonRow(
            "success share captured at k=2 vs unlimited",
            "most",
            successes["2"] / successes["all"] if successes["all"] else 0.0,
            band=(0.75, 1.01),
        )
    )
    rows.append(
        ComparisonRow(
            "coverage unaffected by k (antecedent-side measure)",
            "0",
            max(coverages.values()) - min(coverages.values()),
            band=(0.0, 0.01),
        )
    )
    return ExperimentResult(
        experiment_id="topk-ablation",
        title="Top-k consequent forwarding ablation (paper §III-B.1)",
        rows=rows,
        extras={"successes": successes, "coverages": coverages},
    )


def run_churn_sensitivity(
    *, seed: int = DEFAULT_SEED, churn_rates: tuple = (0.0, 0.01, 0.05, 0.15)
) -> ExperimentResult:
    """Online association routing under accelerating peer turnover.

    Each issued query churns one peer with probability ``churn_rate``
    (fresh identity, learned tables reset).  The finding this ablation
    pins down: *online* rule learning is churn-robust — because tables
    update from every reply (the mechanism §VI's streaming proposal
    formalizes), fallback share and hit rate stay essentially flat, and
    the traffic advantage over flooding survives heavy turnover.  Churn
    even trims the double-pay pathology (stale covered-but-wrong rules
    cost a futile narrow attempt *plus* the fallback flood).
    """
    from repro.routing.flooding import FloodingPolicy

    scale = current_scale()
    stats = {}
    fallback_share = {}
    rows = []
    for rate in churn_rates:
        overlay = Overlay(
            OverlayConfig(n_nodes=scale.overlay_nodes, churn_rate=rate), seed=seed
        )
        overlay.install_policies(
            lambda nid, ov: AssociationRoutingPolicy(nid, ov, window=2048)
        )
        s = overlay.run_workload(
            scale.overlay_queries, warmup=scale.overlay_warmup
        )
        stats[rate] = s
        resolved = sum(
            overlay.node(n).policy.rule_resolved_count
            for n in range(overlay.n_nodes)
        )
        fallbacks = sum(
            overlay.node(n).policy.fallback_count for n in range(overlay.n_nodes)
        )
        total = resolved + fallbacks
        fallback_share[rate] = fallbacks / total if total else 0.0
        rows.append(
            ComparisonRow(
                f"flood-fallback share @ churn={rate}",
                "stays flat (online learning)",
                fallback_share[rate],
            )
        )
    lo, hi = churn_rates[0], churn_rates[-1]
    # Flooding baseline under the same heavy churn, for the savings ratio.
    flood_overlay = Overlay(
        OverlayConfig(n_nodes=scale.overlay_nodes, churn_rate=hi), seed=seed
    )
    flood_overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
    flood = flood_overlay.run_workload(scale.overlay_queries)
    rows.append(
        ComparisonRow(
            "fallback-share drift across churn rates (churn-robust learning)",
            "small",
            abs(fallback_share[hi] - fallback_share[lo]),
            band=(0.0, 0.10),
        )
    )
    rows.append(
        ComparisonRow(
            "hit rate retained under heavy churn (flood fallback is churn-proof)",
            "~equal",
            stats[hi].success_rate - stats[lo].success_rate,
            band=(-0.12, 1.0),
        )
    )
    rows.append(
        ComparisonRow(
            "traffic advantage over flooding survives heavy churn",
            ">1.3x",
            flood.messages_per_query / stats[hi].messages_per_query,
            band=(1.3, 1000.0),
        )
    )
    return ExperimentResult(
        experiment_id="churn-sensitivity",
        title="Association routing under churn (robustness ablation)",
        rows=rows,
        extras={
            **{str(rate): str(s) for rate, s in stats.items()},
            "flooding@heavy-churn": str(flood),
        },
    )
