"""Tests for the shared-memory trace transport (repro.parallel.shm)."""

import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.parallel.shm import AttachedTraceStore, SharedTraceStore, TraceHandle


def columns(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 50, size=n).astype(np.int64),
        rng.integers(100, 150, size=n).astype(np.int64),
    )


class TestSharedTraceStore:
    def test_round_trip(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            handle = store.put("spec", sources, repliers)
            assert handle.n_pairs == 100
            assert len(store) == 1
            out_sources, out_repliers = store.arrays("spec")
            np.testing.assert_array_equal(out_sources, sources)
            np.testing.assert_array_equal(out_repliers, repliers)

    def test_put_copies(self):
        """Mutating the input after put must not change the stored trace."""
        sources, repliers = columns()
        with SharedTraceStore() as store:
            store.put("spec", sources, repliers)
            sources[:] = -1
            assert store.arrays("spec")[0][0] != -1

    def test_duplicate_put_is_idempotent(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            first = store.put("spec", sources, repliers)
            second = store.put("spec", sources + 1, repliers)
            assert second is first
            assert len(store) == 1

    def test_rejects_mismatched_columns(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            with pytest.raises(ValueError):
                store.put("spec", sources, repliers[:-1])

    def test_close_unlinks_segments(self):
        sources, repliers = columns()
        store = SharedTraceStore()
        handle = store.put("spec", sources, repliers)
        store.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.shm_name)
        store.close()  # idempotent

    def test_empty_trace(self):
        empty = np.array([], dtype=np.int64)
        with SharedTraceStore() as store:
            handle = store.put("spec", empty, empty)
            assert handle.n_pairs == 0
            assert len(store.arrays("spec")[0]) == 0


class TestAttachedTraceStore:
    def test_handles_are_picklable(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            store.put("spec", sources, repliers)
            handles = pickle.loads(pickle.dumps(store.handles()))
            assert handles == {"spec": TraceHandle(handles["spec"].shm_name, 100)}

    def test_attached_arrays_match(self):
        sources, repliers = columns()
        with SharedTraceStore() as store:
            store.put("spec", sources, repliers)
            attached = AttachedTraceStore(store.handles())
            try:
                assert "spec" in attached
                assert "other" not in attached
                out_sources, out_repliers = attached.arrays("spec")
                np.testing.assert_array_equal(out_sources, sources)
                np.testing.assert_array_equal(out_repliers, repliers)
                # Second call reuses the attachment.
                again, _ = attached.arrays("spec")
                np.testing.assert_array_equal(again, sources)
            finally:
                attached.close()
