"""Prometheus text exposition parsing and cross-process aggregation."""

import asyncio
import threading

import pytest

from repro.obs.http import ObsHttpServer
from repro.obs.registry import MetricsRegistry
from repro.obs.scrape import (
    histogram_quantile,
    merge_histograms,
    parse_histograms,
    parse_labels,
    parse_samples,
    scrape_totals,
)


def stocked_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    frames = registry.counter("repro_frames_total", "frames", ("node", "direction"))
    frames.labels("0", "in").inc(10)
    frames.labels("0", "out").inc(5)
    gauge = registry.gauge("repro_connected_peers", "peers", ("node",))
    gauge.labels("0").set(3)
    hist = registry.histogram("repro_decode_seconds", "decode", ("node",))
    hist.labels("0").observe(0.5)
    hist.labels("0").observe(1.5)
    return registry


class TestParsing:
    def test_render_parse_round_trip(self):
        samples = parse_samples(stocked_registry().render())
        by_key = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in samples
        }
        assert by_key[
            ("repro_frames_total", (("direction", "in"), ("node", "0")))
        ] == 10.0
        assert by_key[
            ("repro_connected_peers", (("node", "0"),))
        ] == 3.0
        assert by_key[("repro_decode_seconds_count", (("node", "0"),))] == 2.0
        assert by_key[("repro_decode_seconds_sum", (("node", "0"),))] == 2.0

    def test_label_escapes(self):
        labels = parse_labels(r'peer="a\"b",path="c\\d",msg="x\ny"')
        assert labels == {"peer": 'a"b', "path": "c\\d", "msg": "x\ny"}

    def test_inf_values_and_malformed_lines(self):
        samples = parse_samples('m_bucket{le="+Inf"} 4\nedge +Inf\n')
        assert samples[0] == ("m_bucket", {"le": "+Inf"}, 4.0)
        assert samples[1][2] == float("inf")
        with pytest.raises(ValueError):
            parse_samples("lonely_name\n")


class TestScrapeTotals:
    def test_sums_across_urls_and_labels_skipping_buckets(self, monkeypatch):
        text = stocked_registry().render()
        monkeypatch.setattr(
            "repro.obs.scrape.scrape_text", lambda url, timeout=5.0: text
        )
        totals = scrape_totals(["http://a/metrics", "http://b/metrics"])
        # two identical "workers": everything doubles.
        assert totals["repro_frames_total"] == 30.0
        assert totals["repro_connected_peers"] == 6.0
        assert totals["repro_decode_seconds_count"] == 4.0
        # cumulative histogram buckets would double-count; they must
        # not appear in the aggregate at all.
        assert not any(name.endswith("_bucket") for name in totals)

    def test_prefix_filter(self, monkeypatch):
        monkeypatch.setattr(
            "repro.obs.scrape.scrape_text",
            lambda url, timeout=5.0: "other_total 7\nrepro_x_total 1\n",
        )
        totals = scrape_totals(["http://a/metrics"], prefix="repro_")
        assert totals == {"repro_x_total": 1.0}

    @pytest.mark.live
    def test_over_real_http(self):
        registry = stocked_registry()
        server = ObsHttpServer(render=registry.render)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(server.start(), loop).result(5)
            totals = scrape_totals(
                [f"http://127.0.0.1:{server.port}/metrics"], prefix="repro_"
            )
            assert totals["repro_frames_total"] == 15.0
            assert totals["repro_connected_peers"] == 3.0
        finally:
            asyncio.run_coroutine_threadsafe(server.close(), loop).result(5)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(5)


class TestHistogramParsing:
    def test_parse_histograms_from_rendered_registry(self):
        hists = parse_histograms(stocked_registry().render())
        assert list(hists) == ["repro_decode_seconds"]
        hist = hists["repro_decode_seconds"]
        assert hist["count"] == 2.0
        assert hist["sum"] == 2.0
        # cumulative: the +Inf bucket covers every observation, and
        # counts never decrease as bounds grow.
        bounds = sorted(hist["buckets"])
        assert bounds[-1] == float("inf")
        assert hist["buckets"][float("inf")] == 2.0
        counts = [hist["buckets"][b] for b in bounds]
        assert counts == sorted(counts)

    def test_plain_counters_are_not_histograms(self):
        text = "repro_shutdown_sum 3\nrepro_x_total 1\n"
        assert parse_histograms(text) == {}

    def test_prefix_filter(self):
        text = (
            'a_seconds_bucket{le="1"} 1\n'
            'a_seconds_bucket{le="+Inf"} 1\n'
            "a_seconds_sum 0.5\na_seconds_count 1\n"
            'b_seconds_bucket{le="+Inf"} 2\n'
            "b_seconds_sum 1\nb_seconds_count 2\n"
        )
        assert list(parse_histograms(text, prefix="a_")) == ["a_seconds"]

    def test_merge_sums_buckets_across_nodes(self):
        node_a = parse_histograms(
            'q_seconds_bucket{le="0.1"} 1\n'
            'q_seconds_bucket{le="+Inf"} 4\n'
            "q_seconds_sum 2.0\nq_seconds_count 4\n"
        )
        node_b = parse_histograms(
            'q_seconds_bucket{le="0.1"} 3\n'
            'q_seconds_bucket{le="+Inf"} 6\n'
            "q_seconds_sum 1.0\nq_seconds_count 6\n"
        )
        merged = merge_histograms(node_a, node_b)
        hist = merged["q_seconds"]
        assert hist["buckets"][0.1] == 4.0
        assert hist["buckets"][float("inf")] == 10.0
        assert hist["sum"] == 3.0
        assert hist["count"] == 10.0

    def test_quantile_walks_cumulative_buckets(self):
        hist = {
            "buckets": {0.1: 5.0, 0.5: 8.0, float("inf"): 10.0},
            "sum": 3.0,
            "count": 10.0,
        }
        assert histogram_quantile(hist, 0.5) == 0.1
        assert histogram_quantile(hist, 0.8) == 0.5
        assert histogram_quantile(hist, 1.0) == float("inf")
        assert histogram_quantile({"buckets": {}, "count": 0.0}, 0.5) == 0.0
        with pytest.raises(ValueError):
            histogram_quantile(hist, 1.5)
