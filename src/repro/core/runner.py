"""Strategy run records.

A strategy consumes the trace's block sequence and produces a
:class:`StrategyRun`: one :class:`TrialResult` per tested block plus
aggregate statistics.  The aggregates mirror how the paper reports results
("the average coverage was 0.80", "new rule sets were generated every 1.7
blocks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.evaluation import RulesetTestResult
from repro.trace.blocks import PairBlock
from repro.utils.stats import SeriesSummary, summarize_series

__all__ = ["TrialResult", "StrategyRun", "run_strategy"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of testing one block.

    ``fresh_ruleset`` is True when the rule set used for this trial was
    generated immediately before it (i.e. the trial exercised up-to-date
    rules).  ``ruleset_size`` is the number of rules in force.
    """

    block_index: int
    result: RulesetTestResult
    fresh_ruleset: bool
    ruleset_size: int

    @property
    def coverage(self) -> float:
        return self.result.coverage

    @property
    def success(self) -> float:
        return self.result.success


@dataclass(frozen=True)
class StrategyRun:
    """A full strategy execution over a trace."""

    strategy_name: str
    trials: tuple[TrialResult, ...]
    n_generations: int

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def coverage_series(self) -> list[float]:
        return [t.coverage for t in self.trials]

    @property
    def success_series(self) -> list[float]:
        return [t.success for t in self.trials]

    @property
    def average_coverage(self) -> float:
        series = self.coverage_series
        return sum(series) / len(series) if series else float("nan")

    @property
    def average_success(self) -> float:
        series = self.success_series
        return sum(series) / len(series) if series else float("nan")

    @property
    def blocks_per_generation(self) -> float:
        """Mean number of tested blocks per rule-set generation.

        The paper's "new rule sets were generated every 1.7 blocks" metric;
        ``inf`` if the strategy never generated a rule set.
        """
        if self.n_generations == 0:
            return float("inf")
        return self.n_trials / self.n_generations

    def coverage_summary(self) -> SeriesSummary:
        return summarize_series(self.coverage_series)

    def success_summary(self) -> SeriesSummary:
        return summarize_series(self.success_series)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"{self.strategy_name}: trials={self.n_trials} "
            f"avg_coverage={self.average_coverage:.3f} "
            f"avg_success={self.average_success:.3f} "
            f"generations={self.n_generations}"
        )


def run_strategy(strategy, blocks: Iterable[PairBlock]) -> StrategyRun:
    """Execute ``strategy`` over ``blocks`` (thin convenience wrapper).

    ``blocks`` may be any iterable — a list or a one-shot generator such
    as a trace-store block stream; strategies retain O(1) blocks.
    """
    return strategy.run(blocks)
