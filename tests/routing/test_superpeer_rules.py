"""Tests for repro.routing.superpeer_rules."""

import pytest

from repro.network.hier.digest import DigestEntry
from repro.routing.superpeer_rules import SuperPeerRules


def _table(**kwargs):
    return SuperPeerRules(0, **kwargs)


class TestValidation:
    def test_top_k(self):
        with pytest.raises(ValueError):
            _table(top_k=0)

    def test_min_support(self):
        with pytest.raises(ValueError):
            _table(min_support_count=0)


class TestLearning:
    def test_consequents_ranked_by_support(self):
        table = _table(min_support_count=2)
        for _ in range(5):
            table.observe(3, 7)
        for _ in range(3):
            table.observe(3, 9)
        table.observe(3, 11)  # below the support floor
        assert table.consequents(3) == [7, 9]
        assert table.consequents(3, k=1) == [7]
        assert table.consequents(99) == []
        assert table.n_observations == 9

    def test_rule_stats(self):
        table = _table()
        for _ in range(4):
            table.observe(1, 5)
        support, confidence = table.rule_stats(1, 5)
        assert support == 4
        assert confidence == pytest.approx(1.0)
        assert table.rule_stats(1, 6) == (0, 0.0)

    def test_reset(self):
        table = _table()
        table.observe(1, 5)
        table.reset()
        assert table.n_observations == 0
        assert table.consequents(1) == []


class TestPublish:
    def test_epoch_bumps_per_publish(self):
        table = _table()
        assert table.publish().epoch == 1
        assert table.publish().epoch == 2
        assert table.epoch == 2

    def test_digest_content(self):
        table = _table(min_support_count=2)
        for _ in range(5):
            table.observe(0, 7)
        for _ in range(2):
            table.observe(0, 9)
        table.observe(0, 11)  # pruned: below the floor
        digest = table.publish(top_k=2)
        assert digest.origin == 0
        assert digest.total == 8
        assert digest.entries == (DigestEntry(0, 7, 5), DigestEntry(0, 9, 2))

    def test_top_k_caps_per_category(self):
        table = _table(min_support_count=1)
        for replier in range(5):
            for _ in range(replier + 1):
                table.observe(0, replier)
        digest = table.publish(top_k=2)
        assert len(digest.entries) == 2
        assert {e.consequent for e in digest.entries} == {3, 4}
