"""Tests for partitioned parallel evaluation (repro.parallel.partition)."""

import numpy as np
import pytest

from repro.core.evaluation import RulesetTestResult
from repro.core.runner import StrategyRun, TrialResult, merge_runs
from repro.core.strategies import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    SlidingWindow,
    StaticRuleset,
)
from repro.core.streaming import StreamingRules
from repro.parallel.partition import (
    BlockShard,
    evaluate_store,
    evaluate_store_partitioned,
    plan_shards,
    run_shard,
)
from repro.trace.store import TraceStoreReader, write_trace_store


def make_store(path, n_pairs=6000, block_size=500, seed=0):
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, 40, size=n_pairs).astype(np.int64)
    repliers = rng.integers(100, 130, size=n_pairs).astype(np.int64)
    reader = write_trace_store(path, sources, repliers, block_size=block_size)
    reader.close()
    return str(path)


def strategies():
    return [
        StaticRuleset(),
        SlidingWindow(),
        LazySlidingWindow(laziness=3),
        AdaptiveSlidingWindow(),
        StreamingRules(),
        StreamingRules(backend="lossy"),
    ]


def merge_in_process(path, strategy, n_shards):
    """Shard + evaluate in-process (no pool): exercises the same math."""
    with TraceStoreReader(path) as reader:
        shards = plan_shards(
            strategy, reader.n_blocks, n_shards, block_pairs=reader.block_pairs()
        )
        return merge_runs([run_shard(reader, strategy, s) for s in shards])


class TestBitIdentity:
    @pytest.mark.parametrize("strategy", strategies(), ids=lambda s: s.name)
    @pytest.mark.parametrize("n_shards", [2, 3, 5, 11])
    def test_sharded_equals_serial(self, tmp_path, strategy, n_shards):
        path = make_store(tmp_path / "t.rptrace")
        serial = evaluate_store(path, strategy)
        assert merge_in_process(path, strategy, n_shards) == serial

    def test_process_pool_equals_serial(self, tmp_path):
        path = make_store(tmp_path / "t.rptrace")
        strategy = SlidingWindow()
        serial = evaluate_store(path, strategy)
        assert (
            evaluate_store_partitioned(path, strategy, workers=2) == serial
        )

    def test_more_workers_than_blocks(self, tmp_path):
        # 6 blocks, 5 scoreable: 50 workers clamp to one block per shard.
        path = make_store(tmp_path / "t.rptrace", n_pairs=3000, block_size=500)
        strategy = LazySlidingWindow(laziness=2)
        serial = evaluate_store(path, strategy)
        assert merge_in_process(path, strategy, 50) == serial

    def test_compressed_torn_store(self, tmp_path):
        # A zlib store that lost its footer (simulated crash): recovery
        # truncates to intact blocks, and partitioned evaluation of the
        # recovered prefix still matches its serial run.
        from repro.trace.store import TraceStoreWriter

        rng = np.random.default_rng(3)
        path = tmp_path / "z.rptrace"
        writer = TraceStoreWriter(path, block_size=400, codec="zlib")
        writer.append(
            rng.integers(0, 40, 4000).astype(np.int64),
            rng.integers(100, 130, 4000).astype(np.int64),
        )
        writer.abandon()  # no footer
        with open(path, "r+b") as fh:
            fh.truncate(path.stat().st_size - 37)  # tear the last block
        with TraceStoreReader(path) as reader:
            assert reader.recovered
            assert 2 <= reader.n_blocks < 10
        strategy = SlidingWindow()
        serial = evaluate_store(str(path), strategy)
        assert merge_in_process(str(path), strategy, 3) == serial
        assert (
            evaluate_store_partitioned(str(path), strategy, workers=2) == serial
        )

    def test_workers_one_is_serial(self, tmp_path):
        path = make_store(tmp_path / "t.rptrace", n_pairs=2000, block_size=500)
        strategy = StaticRuleset()
        assert evaluate_store_partitioned(
            path, strategy, workers=1
        ) == evaluate_store(path, strategy)


class TestPlanning:
    def test_single_block_store_rejected(self, tmp_path):
        path = make_store(tmp_path / "t.rptrace", n_pairs=500, block_size=500)
        with TraceStoreReader(path) as reader:
            assert reader.n_blocks == 1
        with pytest.raises(ValueError, match=">= 2 blocks"):
            plan_shards(SlidingWindow(), 1, 4)
        with pytest.raises(ValueError, match=">= 2 blocks"):
            evaluate_store_partitioned(path, SlidingWindow(), workers=4)

    def test_scored_ranges_tile_exactly(self):
        shards = plan_shards(SlidingWindow(), 12, 5)
        covered = []
        for shard in shards:
            covered.extend(range(shard.scored_start, shard.scored_stop))
        assert covered == list(range(1, 12))
        sizes = [s.n_scored for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_warmup_semantics_per_strategy(self):
        assert plan_shards(StaticRuleset(), 10, 2)[1].warmup == (0,)
        assert plan_shards(SlidingWindow(), 10, 2)[1].warmup == (5,)
        lazy = plan_shards(LazySlidingWindow(laziness=4), 10, 2)[1]
        assert lazy.warmup == (4, 5)  # last schedule point 4 -> start 6
        adaptive = plan_shards(AdaptiveSlidingWindow(), 10, 2)[1]
        assert adaptive.warmup == tuple(range(0, 6))  # full prefix
        exact = plan_shards(
            StreamingRules(window_pairs=900), 10, 2, block_pairs=[500] * 10
        )[1]
        assert exact.warmup == (4, 5)  # two 500-pair blocks cover 900

    def test_shard_validation(self):
        with pytest.raises(ValueError):
            BlockShard(warmup=(), scored_start=1, scored_stop=2)
        with pytest.raises(ValueError):
            BlockShard(warmup=(0,), scored_start=2, scored_stop=2)
        with pytest.raises(ValueError):
            BlockShard(warmup=(3,), scored_start=2, scored_stop=4)


def trial(i, fresh=True):
    return TrialResult(
        block_index=i,
        result=RulesetTestResult(n_total=10, n_covered=5, n_successful=2),
        fresh_ruleset=fresh,
        ruleset_size=3,
    )


class TestMergeRuns:
    def test_empty_partials_skipped_not_nan(self):
        # Regression: an empty partition's nan averages must not poison
        # the merged aggregates.
        full = StrategyRun("sliding", (trial(1), trial(2)), n_generations=2)
        empty = StrategyRun("sliding", (), n_generations=0)
        merged = merge_runs([empty, full, empty])
        assert merged == full
        assert merged.average_coverage == pytest.approx(0.5)
        assert not np.isnan(merged.average_coverage)

    def test_all_empty_merges_to_empty(self):
        merged = merge_runs([StrategyRun("lazy", (), 0), StrategyRun("lazy", (), 0)])
        assert merged.n_trials == 0
        assert np.isnan(merged.average_coverage)  # display-only nan

    def test_mixed_strategies_error(self):
        a = StrategyRun("sliding", (trial(1),), n_generations=1)
        b = StrategyRun("lazy", (trial(2),), n_generations=1)
        with pytest.raises(ValueError, match="different strategies"):
            merge_runs([a, b])
        # Even when one of them is empty: strategy mixing is a caller bug.
        with pytest.raises(ValueError, match="different strategies"):
            merge_runs([a, StrategyRun("lazy", (), 0)])

    def test_overlapping_ranges_error(self):
        a = StrategyRun("sliding", (trial(1), trial(2)), n_generations=2)
        b = StrategyRun("sliding", (trial(2), trial(3)), n_generations=2)
        with pytest.raises(ValueError, match="overlap"):
            merge_runs([a, b])

    def test_no_runs_error(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_runs([])

    def test_out_of_order_partials_sorted(self):
        a = StrategyRun("sliding", (trial(1), trial(2)), n_generations=2)
        b = StrategyRun("sliding", (trial(3), trial(4)), n_generations=2)
        merged = merge_runs([b, a])
        assert [t.block_index for t in merged.trials] == [1, 2, 3, 4]
        assert merged.n_generations == 4

    def test_merge_method(self):
        a = StrategyRun("sliding", (trial(1),), n_generations=1)
        b = StrategyRun("sliding", (trial(2),), n_generations=1)
        assert a.merge(b) == merge_runs([a, b])
