"""Routing indices (Crespo & Garcia-Molina, the paper's ref [10]).

Each node keeps, per neighbor, a count of documents in each category
reachable *through* that neighbor within a hop horizon, and forwards a
query to the neighbor whose index promises the most documents in the
query's category — the "estimated goodness" the paper's related-work
section describes.

The original builds these tables through neighbor index-update exchange;
this reproduction computes them with a truncated BFS per (node, neighbor)
pair at install time — the same information the update protocol would
converge to, at laptop-simulation cost (documented substitution).  Under
churn, the indices go stale exactly as real ones would between update
rounds.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.network.messages import Query
from repro.routing.base import RoutingPolicy

__all__ = ["RoutingIndicesPolicy", "build_routing_indices"]


def build_routing_indices(overlay, *, horizon: int = 3) -> dict[int, dict[int, np.ndarray]]:
    """Compute per-(node, neighbor) per-category reachable-document counts.

    ``result[u][v][c]`` = number of files of category ``c`` held by peers
    reachable from ``u`` via its neighbor ``v`` in at most ``horizon``
    hops (paths that do not pass back through ``u``).
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    topo = overlay.topology
    n_categories = overlay.catalog.n_categories

    def category_counts(node_id: int) -> np.ndarray:
        counts = np.zeros(n_categories, dtype=np.int64)
        for file_id in overlay.node(node_id).library:
            counts[overlay.catalog.category_of(file_id)] += 1
        return counts

    per_node = [category_counts(u) for u in range(topo.n_nodes)]
    result: dict[int, dict[int, np.ndarray]] = {}
    for u in range(topo.n_nodes):
        result[u] = {}
        for v in topo.neighbors(u):
            counts = np.zeros(n_categories, dtype=np.int64)
            seen = {u, v}
            queue = deque([(v, 1)])
            counts += per_node[v]
            while queue:
                w, d = queue.popleft()
                if d >= horizon:
                    continue
                for x in topo.neighbors(w):
                    if x not in seen:
                        seen.add(x)
                        counts += per_node[x]
                        queue.append((x, d + 1))
            result[u][v] = counts
    return result


class RoutingIndicesPolicy(RoutingPolicy):
    """Forward each query toward the best-indexed neighbor.

    ``width`` neighbors with the highest category counts are chosen at
    each hop (``width=1`` gives the classic guided walk).  Neighbors with
    a zero index for the category are used only if every neighbor is zero
    (then one random-ish fallback neighbor keeps the query alive).
    """

    name = "routing-indices"

    def __init__(self, node_id: int, overlay, *, width: int = 2) -> None:
        super().__init__(node_id, overlay)
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self._index: dict[int, np.ndarray] | None = None

    def install_index(self, index_row: dict[int, np.ndarray]) -> None:
        """Attach this node's routing-index row (from build_routing_indices)."""
        self._index = index_row

    def select(self, node: int, upstream: int | None, query: Query) -> Sequence[int]:
        neighbors = [v for v in self.overlay.topology.neighbors(node) if v != upstream]
        if not neighbors:
            return ()
        if self._index is None:
            return neighbors  # no index yet: behave like flooding
        scored = [
            (int(self._index[v][query.category]) if v in self._index else 0, v)
            for v in neighbors
        ]
        scored.sort(key=lambda sv: (-sv[0], sv[1]))
        positive = [v for score, v in scored if score > 0]
        if positive:
            return positive[: self.width]
        # Dead index for this category: keep the query moving along one edge.
        return (scored[0][1],)

    def reset(self) -> None:
        # A churned peer loses its learned/installed index; it re-floods
        # until an index is installed again.
        self._index = None
