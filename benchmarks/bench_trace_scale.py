"""Out-of-core trace store scale gate (``python -m benchmarks.bench_trace_scale``).

Proves the claims behind :mod:`repro.trace.store` and
:mod:`repro.parallel.partition` (the paper's full regime is 10.5M
query–reply pairs — far past what the in-memory path should be asked to
hold twice):

* **Write throughput** — the append-only chunked writer streams generator
  output to disk without holding the trace; pairs/sec written is recorded.
* **Bit-identical evaluation** — a strategy run streaming blocks off the
  store equals the same run over in-memory ``blocks_from_arrays`` blocks,
  trial for trial.
* **O(blocks) memory** — evaluation peak RSS is measured in fresh spawn
  subprocesses (so each measurement owns its high-water mark) for a base
  store and one ``--growth`` times larger; the gate *asserts* the RSS
  delta stays within a block-sized allowance instead of eyeballing it.
* **Partitioned speedup** — a 4-worker partitioned evaluation of the base
  store must merge bit-identical to the serial run, and (full runs only —
  CI smoke hosts may have 2 cores) deliver >= 2x serial pairs/sec.
* **Compression round-trip** — a zlib (v2) copy of the base store must
  shrink the file and evaluate bit-identically to the raw store.

Results land in ``BENCH_trace_scale.json`` (including
``partitioned_pairs_per_sec`` and ``compression_ratio``); a failed gate
exits non-zero.  ``--quick`` (CI smoke) scales the base trace down to
100k pairs and gates identity but not the speedup ratio.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import tempfile
from time import perf_counter

#: evaluation strategies exercised by the bit-identity check.
_IDENTITY_STRATEGIES = ("static", "sliding", "lazy", "adaptive")

#: RSS allowance floor for the growth gate (interpreter noise, pools).
_RSS_FLOOR_BYTES = 48 * 1024 * 1024

#: workers for the partitioned gate (the ISSUE's acceptance shape).
_PARTITION_WORKERS = 4

#: required partitioned/serial throughput ratio on full (non-quick) runs.
_PARTITION_SPEEDUP = 2.0


def _make_strategy(name: str):
    from repro.core.strategies import (
        AdaptiveSlidingWindow,
        LazySlidingWindow,
        SlidingWindow,
        StaticRuleset,
    )

    return {
        "static": StaticRuleset,
        "sliding": SlidingWindow,
        "lazy": LazySlidingWindow,
        "adaptive": AdaptiveSlidingWindow,
    }[name]()


def _write_stores(
    small_path: str,
    large_path: str,
    *,
    base_pairs: int,
    growth: int,
    block_size: int,
    chunk_size: int,
    seed: int,
) -> dict:
    """One generator pass, two stores: base trace and its 10x continuation.

    Streaming both writers from the same chunk sequence means the large
    store's first ``base_pairs`` pairs are byte-identical to the small
    store, and the parent never holds more than ``chunk_size`` pairs of
    generated trace.
    """
    from repro.trace.store import TraceStoreWriter
    from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

    gen = MonitorTraceGenerator(MonitorTraceConfig(block_size=block_size), seed=seed)
    total_pairs = base_pairs * growth
    written = 0
    t0 = perf_counter()
    with TraceStoreWriter(small_path, block_size=block_size) as small:
        with TraceStoreWriter(large_path, block_size=block_size) as large:
            while written < total_pairs:
                n = min(chunk_size, total_pairs - written)
                arrays = gen.generate_pair_arrays(n)
                large.append(arrays.source, arrays.replier)
                if written < base_pairs:
                    take = min(n, base_pairs - written)
                    small.append(arrays.source[:take], arrays.replier[:take])
                written += n
    seconds = perf_counter() - t0
    return {
        "base_pairs": base_pairs,
        "total_pairs": total_pairs,
        "write_seconds": seconds,
        "write_pairs_per_sec": total_pairs / seconds if seconds else float("inf"),
        "small_bytes": os.path.getsize(small_path),
        "large_bytes": os.path.getsize(large_path),
    }


def _check_bit_identity(store_path: str) -> dict:
    """Strategy runs off the store must equal runs off in-memory blocks."""
    import numpy as np

    from repro.trace.blocks import blocks_from_arrays
    from repro.trace.store import TraceStoreReader

    with TraceStoreReader(store_path) as reader:
        sources = np.concatenate([b.sources for b in reader.iter_blocks()])
        repliers = np.concatenate([b.repliers for b in reader.iter_blocks()])
        block_size = reader.block_size
    in_memory = blocks_from_arrays(sources, repliers, block_size=block_size)

    mismatches = []
    for name in _IDENTITY_STRATEGIES:
        memory_run = _make_strategy(name).run(in_memory)
        with TraceStoreReader(store_path) as reader:
            store_run = _make_strategy(name).run(reader.iter_blocks())
        if memory_run != store_run:
            mismatches.append(name)
    return {
        "strategies": list(_IDENTITY_STRATEGIES),
        "identical": not mismatches,
        "mismatched_strategies": mismatches,
    }


def _check_partitioned(store_path: str, *, quick: bool) -> dict:
    """4-worker partitioned evaluation: merged-run identity + speedup.

    The serial reference is timed in-process right next to the
    partitioned run so the ratio compares like with like (same host
    state, same page cache).  Identity is gated always; the >= 2x
    speedup only on full runs on hosts with >= ``_PARTITION_WORKERS``
    CPUs — partitioning does not shed work, so a 1–2 core CI smoke host
    cannot honestly promise 2x.
    """
    from repro.parallel.partition import evaluate_store, evaluate_store_partitioned

    strategy = _make_strategy("sliding")
    t0 = perf_counter()
    serial_run = evaluate_store(store_path, strategy)
    serial_seconds = perf_counter() - t0

    from repro.trace.store import TraceStoreReader

    with TraceStoreReader(store_path) as reader:
        n_pairs = reader.n_pairs

    t0 = perf_counter()
    partitioned_run = evaluate_store_partitioned(
        store_path, strategy, workers=_PARTITION_WORKERS
    )
    partitioned_seconds = perf_counter() - t0

    serial_rate = n_pairs / serial_seconds if serial_seconds else float("inf")
    partitioned_rate = (
        n_pairs / partitioned_seconds if partitioned_seconds else float("inf")
    )
    speedup = serial_seconds / partitioned_seconds if partitioned_seconds else float("inf")
    identical = partitioned_run == serial_run
    cpus = os.cpu_count() or 1
    gate_speedup = not quick and cpus >= _PARTITION_WORKERS
    speedup_ok = not gate_speedup or speedup >= _PARTITION_SPEEDUP
    return {
        "workers": _PARTITION_WORKERS,
        "strategy": "sliding",
        "host_cpus": cpus,
        "serial_seconds": serial_seconds,
        "serial_pairs_per_sec": serial_rate,
        "partitioned_seconds": partitioned_seconds,
        "partitioned_pairs_per_sec": partitioned_rate,
        "speedup": speedup,
        "speedup_required": _PARTITION_SPEEDUP if gate_speedup else None,
        "identical": identical,
        "ok": identical and speedup_ok,
    }


def _check_compression(store_path: str, compressed_path: str) -> dict:
    """Zlib (v2) copy of the store: size ratio + evaluation identity."""
    from repro.trace.store import TraceStoreReader, TraceStoreWriter

    t0 = perf_counter()
    with TraceStoreReader(store_path) as reader:
        with TraceStoreWriter(
            compressed_path, block_size=reader.block_size, codec="zlib"
        ) as writer:
            for block in reader.iter_blocks():
                writer.append_block(block)
    compress_seconds = perf_counter() - t0

    strategy = _make_strategy("sliding")
    with TraceStoreReader(store_path) as reader:
        raw_run = strategy.run(reader.iter_blocks())
    with TraceStoreReader(compressed_path) as reader:
        compressed_run = _make_strategy("sliding").run(reader.iter_blocks())

    raw_bytes = os.path.getsize(store_path)
    compressed_bytes = os.path.getsize(compressed_path)
    return {
        "raw_bytes": raw_bytes,
        "compressed_bytes": compressed_bytes,
        "compression_ratio": raw_bytes / compressed_bytes if compressed_bytes else 0.0,
        "compress_seconds": compress_seconds,
        "identical": compressed_run == raw_run,
    }


def _eval_store_child(store_path: str, conn) -> None:
    """Spawn target: stream-evaluate one store, report own peak RSS."""
    from benchmarks._emit import peak_rss
    from repro.trace.store import TraceStoreReader

    reader = TraceStoreReader(store_path)
    strategy = _make_strategy("sliding")
    t0 = perf_counter()
    run = strategy.run(reader.iter_blocks())
    seconds = perf_counter() - t0
    conn.send(
        {
            "n_pairs": reader.n_pairs,
            "n_blocks": reader.n_blocks,
            "n_trials": run.n_trials,
            "avg_coverage": run.average_coverage,
            "avg_success": run.average_success,
            "eval_seconds": seconds,
            "eval_pairs_per_sec": reader.n_pairs / seconds if seconds else float("inf"),
            "peak_rss_bytes": peak_rss(),
        }
    )
    conn.close()


def _eval_in_subprocess(store_path: str) -> dict:
    """Run the streaming evaluation in a fresh spawn process.

    A fresh process owns its RSS high-water mark — measuring in the
    parent would report whatever earlier phase (trace generation, the
    identity check) peaked at.
    """
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_eval_store_child, args=(store_path, child_conn))
    proc.start()
    child_conn.close()
    try:
        payload = parent_conn.recv()
    finally:
        proc.join()
        parent_conn.close()
    if proc.exitcode != 0:
        raise RuntimeError(f"evaluation subprocess exited {proc.exitcode}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.bench_trace_scale",
        description="out-of-core trace store scale gate",
    )
    parser.add_argument(
        "--pairs",
        type=int,
        default=1_000_000,
        help="base trace size in pairs (default: 1,000,000)",
    )
    parser.add_argument(
        "--growth",
        type=int,
        default=10,
        help="large store is this many times the base (default: 10)",
    )
    parser.add_argument(
        "--block-size", type=int, default=10_000, help="pairs per block"
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=50_000,
        help="pairs generated per writer append (default: 50,000)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="100k-pair base trace (CI smoke)",
    )
    args = parser.parse_args(argv)

    from benchmarks._emit import emit_bench_json, peak_rss

    base_pairs = 100_000 if args.quick else args.pairs
    if args.growth < 2:
        parser.error("--growth must be >= 2")

    with tempfile.TemporaryDirectory(prefix="trace_scale_") as tmp:
        small_path = os.path.join(tmp, "base.rptrace")
        large_path = os.path.join(tmp, "grown.rptrace")

        print(
            f"writing stores: base {base_pairs:,} pairs, "
            f"grown {base_pairs * args.growth:,} pairs ..."
        )
        write = _write_stores(
            small_path,
            large_path,
            base_pairs=base_pairs,
            growth=args.growth,
            block_size=args.block_size,
            chunk_size=args.chunk_size,
            seed=args.seed,
        )
        print(
            f"  {write['write_seconds']:.2f}s "
            f"({write['write_pairs_per_sec']:,.0f} pairs/sec, "
            f"{write['large_bytes'] / 1e6:.1f} MB on disk)"
        )

        print("bit-identity: store-streamed vs in-memory strategy runs ...")
        identity = _check_bit_identity(small_path)
        print(
            "  identical"
            if identity["identical"]
            else f"  MISMATCH in {', '.join(identity['mismatched_strategies'])}"
        )

        print(
            f"partitioned evaluation ({_PARTITION_WORKERS} workers, "
            "merged vs serial) ..."
        )
        partitioned = _check_partitioned(small_path, quick=args.quick)
        print(
            f"  serial {partitioned['serial_pairs_per_sec']:,.0f} pairs/sec, "
            f"partitioned {partitioned['partitioned_pairs_per_sec']:,.0f} pairs/sec "
            f"({partitioned['speedup']:.2f}x), "
            + (
                "merged run bit-identical"
                if partitioned["identical"]
                else "MISMATCH vs serial"
            )
        )
        if not partitioned["ok"]:
            print(
                "  FAILED — "
                + (
                    "merged run differs from serial"
                    if not partitioned["identical"]
                    else f"speedup below {_PARTITION_SPEEDUP:.1f}x"
                )
            )

        print("compressed (zlib v2) store round-trip ...")
        compressed_path = os.path.join(tmp, "base-zlib.rptrace")
        compression = _check_compression(small_path, compressed_path)
        print(
            f"  {compression['raw_bytes'] / 1e6:.1f} MB -> "
            f"{compression['compressed_bytes'] / 1e6:.1f} MB "
            f"({compression['compression_ratio']:.2f}x), "
            + ("evaluation identical" if compression["identical"] else "MISMATCH")
        )

        print("streaming evaluation RSS (spawn subprocesses) ...")
        eval_small = _eval_in_subprocess(small_path)
        eval_large = _eval_in_subprocess(large_path)
        block_bytes = 3 * args.block_size * 8  # sources + repliers + packed
        rss_allowance = max(_RSS_FLOOR_BYTES, 64 * block_bytes)
        rss_delta = eval_large["peak_rss_bytes"] - eval_small["peak_rss_bytes"]
        rss_ok = rss_delta <= rss_allowance
        print(
            f"  base:  {eval_small['peak_rss_bytes'] / 1e6:.1f} MB peak RSS, "
            f"{eval_small['eval_pairs_per_sec']:,.0f} pairs/sec mined+tested"
        )
        print(
            f"  grown: {eval_large['peak_rss_bytes'] / 1e6:.1f} MB peak RSS, "
            f"{eval_large['eval_pairs_per_sec']:,.0f} pairs/sec mined+tested"
        )
        print(
            f"  delta {rss_delta / 1e6:+.1f} MB over a {args.growth}x trace "
            f"(allowance {rss_allowance / 1e6:.0f} MB): "
            + ("OK" if rss_ok else "FAILED — evaluation memory scales with trace")
        )

        payload = {
            "quick": args.quick,
            "seed": args.seed,
            "block_size": args.block_size,
            "chunk_size": args.chunk_size,
            "growth": args.growth,
            "write": write,
            "bit_identity": identity,
            "partitioned": partitioned,
            "partitioned_pairs_per_sec": partitioned["partitioned_pairs_per_sec"],
            "compression": compression,
            "compression_ratio": compression["compression_ratio"],
            "eval_base": eval_small,
            "eval_grown": eval_large,
            "rss_delta_bytes": rss_delta,
            "rss_allowance_bytes": rss_allowance,
            "rss_bounded": rss_ok,
            "parent_peak_rss_bytes": peak_rss(),
        }
        path = emit_bench_json("trace_scale", payload)
        print(f"bench json written: {path}")

    ok = (
        identity["identical"]
        and rss_ok
        and partitioned["ok"]
        and compression["identical"]
    )
    if not ok:
        print("GATE FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
