"""Tests for repro.trace.dedup."""

from hypothesis import given, strategies as st

from repro.store.table import Table
from repro.trace.dedup import dedup_by_first_guid, dedup_queries, dedup_replies
from repro.trace.records import QUERY_COLUMNS, REPLY_COLUMNS


def make_query_table(rows):
    table = Table("queries", QUERY_COLUMNS)
    table.extend(rows)
    return table


class TestDedupQueries:
    def test_keeps_first_occurrence(self):
        table = make_query_table(
            [
                (1.0, 100, 1, "first"),
                (2.0, 200, 2, "other"),
                (3.0, 100, 3, "second use of 100"),
            ]
        )
        out = dedup_queries(table)
        assert len(out) == 2
        assert out.row(0) == (1.0, 100, 1, "first")
        assert out.row(1) == (2.0, 200, 2, "other")

    def test_idempotent(self):
        table = make_query_table(
            [(1.0, 1, 1, "a"), (2.0, 1, 2, "b"), (3.0, 2, 3, "c")]
        )
        once = dedup_queries(table, "d1")
        twice = dedup_by_first_guid(once, "d2", QUERY_COLUMNS)
        assert list(once.iter_rows()) == list(twice.iter_rows())

    def test_no_duplicates_is_identity(self):
        rows = [(1.0, 10, 1, "a"), (2.0, 20, 2, "b")]
        out = dedup_queries(make_query_table(rows))
        assert list(out.iter_rows()) == rows

    @given(st.lists(st.integers(0, 5), max_size=30))
    def test_first_kept_property(self, guids):
        rows = [(float(i), g, i, f"q{i}") for i, g in enumerate(guids)]
        out = dedup_queries(make_query_table(rows))
        # Every distinct GUID appears exactly once, at its first position.
        seen_guids = out.column("guid")
        assert len(seen_guids) == len(set(guids))
        for guid in set(guids):
            first_index = guids.index(guid)
            rowid = seen_guids.index(guid)
            assert out.row(rowid) == rows[first_index]


class TestDedupReplies:
    def test_reply_dedup(self):
        table = Table("replies", REPLY_COLUMNS)
        table.extend(
            [
                (1.0, 5, 1, 100, "a.dat"),
                (2.0, 5, 2, 200, "b.dat"),
                (3.0, 6, 3, 300, "c.dat"),
            ]
        )
        out = dedup_replies(table)
        assert len(out) == 2
        assert out.row(0)[1] == 5
        assert out.row(0)[2] == 1  # first reply kept
