"""Relational operations used by the trace pipeline.

Only the two operations the paper's DB pipeline actually performs are
provided: the GUID equi-join that produces query–reply pairs, and the
group-by count that tallies (query source, reply source) pair frequencies
for rule generation.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.store.table import Table

__all__ = ["inner_join", "group_count"]


def inner_join(
    left: Table,
    right: Table,
    on: str,
    *,
    left_columns: Sequence[str] | None = None,
    right_columns: Sequence[str] | None = None,
) -> Table:
    """Equi-join ``left`` and ``right`` on the column named ``on``.

    Returns a new table whose columns are ``on``, then the requested
    ``left_columns``, then the requested ``right_columns`` (defaults: all
    non-key columns of each side).  Right-side columns whose names collide
    with the output so far are prefixed with ``"<right.name>."``.

    The right table's index on ``on`` is used if present (and created if
    not), making the join O(|left| + |right|) — the same trick the paper
    used to get its joins down to practical time.
    """
    if left_columns is None:
        left_columns = [c for c in left.column_names if c != on]
    if right_columns is None:
        right_columns = [c for c in right.column_names if c != on]

    taken = {on, *left_columns}
    out_right_names = []
    for name in right_columns:
        out_name = name if name not in taken else f"{right.name}.{name}"
        out_right_names.append(out_name)
        taken.add(out_name)

    out = Table(
        f"{left.name}_join_{right.name}",
        [on, *left_columns, *out_right_names],
    )

    index = right.index(on) or right.create_index(on)
    left_key = left.column(on)
    left_cols = [left.column(n) for n in left_columns]
    right_cols = [right.column(n) for n in right_columns]

    for rowid, key in enumerate(left_key):
        for rrow in index.lookup(key):
            out.append(
                [key]
                + [col[rowid] for col in left_cols]
                + [col[rrow] for col in right_cols]
            )
    return out


def group_count(table: Table, by: Sequence[str]) -> Counter:
    """Count rows grouped by the tuple of columns named in ``by``.

    Returns a :class:`collections.Counter` keyed by value tuples.  This is
    the aggregation behind GENERATE-RULESET: how many times each
    (query-source, reply-source) pair occurred within a block.
    """
    if not by:
        raise ValueError("group_count needs at least one grouping column")
    cols = [table.column(n) for n in by]
    return Counter(zip(*cols)) if len(table) else Counter()
