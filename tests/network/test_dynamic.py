"""Tests for repro.network.dynamic."""

import pytest

from repro.network.dynamic import DynamicTopology
from repro.network.topology import Topology


def make_line(n=4, max_degree=None):
    return DynamicTopology(n, [(i, i + 1) for i in range(n - 1)], max_degree=max_degree)


class TestReadInterface:
    def test_mirrors_topology_semantics(self):
        dyn = make_line()
        assert dyn.neighbors(1) == (0, 2)
        assert dyn.degree(0) == 1
        assert dyn.n_edges == 3
        assert dyn.is_connected()
        assert dyn.shortest_path_length(0, 3) == 3

    def test_from_topology(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        dyn = DynamicTopology.from_topology(topo, max_degree=5)
        assert dyn.edges() == topo.edges()

    def test_component_of(self):
        dyn = DynamicTopology(4, [(0, 1), (2, 3)])
        assert dyn.component_of(0) == {0, 1}


class TestMutation:
    def test_add_edge(self):
        dyn = make_line()
        dyn.add_edge(0, 3)
        assert dyn.has_edge(0, 3)
        assert dyn.shortest_path_length(0, 3) == 1
        assert dyn.n_edges == 4

    def test_add_existing_edge_is_noop(self):
        dyn = make_line()
        dyn.add_edge(0, 1)
        assert dyn.n_edges == 3

    def test_degree_cap(self):
        dyn = make_line(max_degree=2)
        assert not dyn.can_add_edge(1, 3)  # node 1 already at degree 2
        with pytest.raises(ValueError):
            dyn.add_edge(1, 3)
        assert dyn.can_add_edge(0, 3)
        dyn.add_edge(0, 3)

    def test_remove_edge(self):
        dyn = make_line()
        dyn.remove_edge(1, 2)
        assert not dyn.has_edge(1, 2)
        assert not dyn.is_connected()
        assert dyn.n_edges == 2

    def test_remove_missing_edge(self):
        with pytest.raises(ValueError):
            make_line().remove_edge(0, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            make_line().add_edge(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_line().add_edge(0, 99)

    def test_can_add_edge_false_for_existing(self):
        assert not make_line().can_add_edge(0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicTopology(0, [])
        with pytest.raises(ValueError):
            DynamicTopology(3, [], max_degree=0)
