"""Bench `adoption`: §III-B — incremental deployment.

Paper: "all nodes in the network do not need to support this routing
method in order for one node to use it, although the benefits increase as
the number of nodes using this routing technique increases."
"""

from benchmarks.conftest import run_and_report


def test_adoption_sweep(benchmark):
    run_and_report(benchmark, "adoption")
