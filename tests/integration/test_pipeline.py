"""End-to-end test of the paper's import pipeline.

trace generator (full-fidelity events) -> store tables -> GUID dedup ->
query/reply join -> block partitioning -> strategy evaluation.
"""

import pytest

from repro.core.strategies import SlidingWindow
from repro.store.database import Database
from repro.trace.blocks import partition_pairs
from repro.trace.dedup import dedup_queries, dedup_replies
from repro.trace.pairing import build_pair_table
from repro.trace.records import QUERY_COLUMNS, REPLY_COLUMNS
from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator


@pytest.fixture(scope="module")
def pipeline_db():
    cfg = MonitorTraceConfig(
        block_size=400,
        n_neighbors=20,
        median_session_blocks=10.0,
        n_categories=24,
        duplicate_guid_rate=0.01,
    )
    gen = MonitorTraceGenerator(cfg, seed=99)
    db = Database("pipeline")
    queries = db.create_table("queries", QUERY_COLUMNS)
    replies = db.create_table("replies", REPLY_COLUMNS)
    n_pairs = 2400
    for query, reply in gen.iter_events(n_pairs):
        queries.append(query.as_row())
        if reply is not None:
            replies.append(reply.as_row())
    return cfg, db, gen


class TestPipeline:
    def test_raw_tables_populated(self, pipeline_db):
        _cfg, db, _gen = pipeline_db
        assert len(db.table("queries")) > len(db.table("replies"))
        assert len(db.table("replies")) == 2400

    def test_dedup_removes_buggy_guids(self, pipeline_db):
        _cfg, db, gen = pipeline_db
        queries = db.table("queries")
        deduped = dedup_queries(queries)
        assert len(deduped) < len(queries)
        assert len(deduped) == len(set(queries.column("guid")))
        assert gen.guid_allocator.duplicate_count > 0

    def test_join_produces_pairs(self, pipeline_db):
        _cfg, db, _gen = pipeline_db
        queries = dedup_queries(db.table("queries"))
        replies = dedup_replies(db.table("replies"))
        pairs = build_pair_table(queries, replies)
        # Every reply whose (deduped) GUID has a surviving query forms a pair.
        assert 0 < len(pairs) <= len(replies)
        # Pair integrity: reply times trail query times.
        assert all(
            rt >= qt
            for qt, rt in zip(pairs.column("query_time"), pairs.column("reply_time"))
        )

    def test_blocks_and_strategy(self, pipeline_db):
        cfg, db, _gen = pipeline_db
        queries = dedup_queries(db.table("queries"))
        replies = dedup_replies(db.table("replies"))
        pairs = build_pair_table(queries, replies)
        blocks = partition_pairs(pairs, block_size=cfg.block_size)
        assert len(blocks) >= 4
        run = SlidingWindow(min_support_count=3).run(blocks)
        assert 0.0 <= run.average_coverage <= 1.0
        assert 0.0 <= run.average_success <= 1.0
        # With a live generator trace, some rule routing must work.
        assert run.average_coverage > 0.2
