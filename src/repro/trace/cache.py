"""Binary caching of generated pair arrays.

Full-scale runs use 3.65M-pair traces; regenerating one for every
experiment wastes minutes.  :func:`save_pairs` / :func:`load_pairs`
persist :class:`~repro.workload.tracegen.PairArrays` as compressed
``.npz`` (the paper kept its 2.6 GB trace in a database for the same
reason), and :func:`cached_pairs` is the memoizing wrapper the full-scale
harness can use.
"""

from __future__ import annotations

import os

import numpy as np

from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator, PairArrays

__all__ = ["save_pairs", "load_pairs", "cached_pairs"]

_FIELDS = ("time", "source", "replier", "category", "host")


def save_pairs(path: str | os.PathLike, arrays: PairArrays) -> None:
    """Write pair arrays as compressed npz."""
    np.savez_compressed(
        path, **{name: getattr(arrays, name) for name in _FIELDS}
    )


def load_pairs(path: str | os.PathLike) -> PairArrays:
    """Read pair arrays written by :func:`save_pairs`."""
    with np.load(path) as data:
        missing = [name for name in _FIELDS if name not in data]
        if missing:
            raise ValueError(f"not a pair-array file: missing {missing}")
        return PairArrays(**{name: data[name] for name in _FIELDS})


def cached_pairs(
    path: str | os.PathLike,
    n_pairs: int,
    *,
    config: MonitorTraceConfig | None = None,
    seed: int = 0,
) -> PairArrays:
    """Load ``path`` if present and long enough, else generate and save.

    A cached trace longer than requested is sliced to ``n_pairs`` (the
    prefix of a trace is a valid shorter trace); a shorter one is
    regenerated from scratch so the cache never silently truncates an
    experiment.
    """
    if n_pairs < 0:
        raise ValueError("n_pairs must be non-negative")
    path = os.fspath(path)
    if os.path.exists(path):
        arrays = load_pairs(path)
        if len(arrays) >= n_pairs:
            return PairArrays(
                **{name: getattr(arrays, name)[:n_pairs] for name in _FIELDS}
            )
    generator = MonitorTraceGenerator(config or MonitorTraceConfig(), seed=seed)
    arrays = generator.generate_pair_arrays(n_pairs)
    save_pairs(path, arrays)
    return arrays
