"""Read Prometheus text exposition back into counters.

:meth:`~repro.obs.registry.MetricsRegistry.render` writes the text
format scrapers ingest; this module is the inverse direction, and it
exists because cluster-wide accounting stopped being an in-process
problem: :meth:`repro.live.cluster.LiveCluster.grand_totals` can sum
:class:`~repro.live.stats.NodeStats` objects it holds references to,
but a *multi-process* cluster (:mod:`repro.scale`) only sees its
workers through their ``/metrics`` endpoints.  :func:`scrape_totals`
fetches each worker's exposition over HTTP and folds the samples back
into one ``{metric name: total}`` dict, summing across workers and
label combinations — the cross-process twin of ``grand_totals()``.

Implemented on :mod:`urllib.request` (stdlib only), with per-request
timeouts so one dead worker cannot hang an aggregation sweep.
"""

from __future__ import annotations

import urllib.request

__all__ = ["parse_labels", "parse_samples", "scrape_text", "scrape_totals"]


def parse_labels(spec: str) -> dict[str, str]:
    """Parse the ``a="x",b="y"`` interior of a label braces block."""
    labels: dict[str, str] = {}
    i = 0
    n = len(spec)
    while i < n:
        eq = spec.index("=", i)
        name = spec[i:eq].strip().lstrip(",").strip()
        if spec[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {spec!r}")
        j = eq + 2
        value: list[str] = []
        while True:
            ch = spec[j]
            if ch == "\\":
                nxt = spec[j + 1]
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt)
                )
                j += 2
            elif ch == '"':
                break
            else:
                value.append(ch)
                j += 1
        labels[name] = "".join(value)
        i = j + 1
    return labels


def parse_samples(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Every ``(name, labels, value)`` sample in one text exposition.

    Comment/``# HELP``/``# TYPE`` lines and blanks are skipped;
    histogram ``_bucket``/``_sum``/``_count`` series appear under their
    suffixed names, exactly as exposed.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            spec, value_part = rest.rsplit("}", 1)
            labels = parse_labels(spec)
        else:
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed sample line {line!r}")
            name, value_part = parts[0], parts[1]
            labels = {}
        value_text = value_part.split()[0]
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
        samples.append((name.strip(), labels, value))
    return samples


def scrape_text(url: str, *, timeout: float = 5.0) -> str:
    """Fetch one ``/metrics`` page as text."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def scrape_totals(
    urls: list[str] | tuple[str, ...],
    *,
    timeout: float = 5.0,
    prefix: str = "",
) -> dict[str, float]:
    """Aggregate counters across many ``/metrics`` endpoints.

    Each endpoint's samples are summed into one ``{name: total}`` dict
    across all label combinations and all URLs — the semantics of
    :meth:`~repro.obs.registry.MetricsRegistry.total`, applied to
    workers that live in other processes.  Histogram ``_bucket`` series
    are skipped (cumulative buckets would double-count; the ``_sum`` /
    ``_count`` series carry the usable totals).  ``prefix`` restricts
    the result (e.g. ``"repro_"``).
    """
    totals: dict[str, float] = {}
    for url in urls:
        for name, _labels, value in parse_samples(
            scrape_text(url, timeout=timeout)
        ):
            if prefix and not name.startswith(prefix):
                continue
            if name.endswith("_bucket"):
                continue
            totals[name] = totals.get(name, 0.0) + value
    return totals
