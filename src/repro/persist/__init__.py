"""Durable rule-state: pair WAL + snapshots + warm crash recovery.

A servent's mined rule set is traffic-derived state the paper spends a
7-day trace to earn; this subpackage keeps it across restarts:

* :mod:`~repro.persist.wal` — append-only, CRC-32-checksummed journal
  of observed (query-source, reply-source) pairs with ``always`` /
  ``interval`` / ``never`` fsync policies;
* :mod:`~repro.persist.snapshot` — versioned, blake2b-fingerprinted
  freezes of the streaming count structures (exact window or lossy
  sketch);
* :mod:`~repro.persist.state` — :class:`PersistentState`, tying both
  into the checkpoint/rotate/compact/recover lifecycle one live node
  drives.

See ``docs/persistence.md`` for the format spec and the
crash-consistency argument.
"""

from repro.persist.snapshot import (
    SnapshotError,
    fingerprint_counts,
    load_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.persist.state import PersistentState, RecoveryInfo, inspect_state_dir
from repro.persist.wal import (
    FSYNC_POLICIES,
    WalError,
    WalReadResult,
    WalWriter,
    read_wal,
    wal_header,
)

__all__ = [
    "FSYNC_POLICIES",
    "PersistentState",
    "RecoveryInfo",
    "SnapshotError",
    "WalError",
    "WalReadResult",
    "WalWriter",
    "fingerprint_counts",
    "inspect_state_dir",
    "load_snapshot",
    "read_snapshot_header",
    "read_wal",
    "wal_header",
    "write_snapshot",
]
