"""LatencyHistogram: bounded-relative-error percentiles, merge, transport."""

import math
import random

import pytest

from repro.scale.histogram import LatencyHistogram


def reference_percentile(samples, p):
    """Exact percentile by the histogram's own rank rule, on raw data."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(len(ordered) * p / 100.0))
    return ordered[rank - 1]


class TestPercentiles:
    def test_matches_sorted_reference_within_one_bucket_ratio(self):
        rng = random.Random(7)
        hist = LatencyHistogram()
        samples = [rng.lognormvariate(-4.0, 1.2) for _ in range(5000)]
        for s in samples:
            hist.record(s)
        ratio = 10.0 ** (1.0 / hist.buckets_per_decade)
        for p in (10.0, 50.0, 90.0, 95.0, 99.0, 99.9):
            exact = reference_percentile(samples, p)
            estimate = hist.percentile(p)
            # the estimate is the upper bound of the exact value's
            # bucket: never below it, never more than one ratio above.
            assert exact <= estimate <= exact * ratio * (1 + 1e-12), p

    def test_single_sample_reports_itself(self):
        hist = LatencyHistogram()
        hist.record(0.0321)
        assert hist.percentile(50.0) == pytest.approx(0.0321)
        assert hist.percentile(99.0) == pytest.approx(0.0321)

    def test_overflow_samples_are_kept_and_clamped(self):
        hist = LatencyHistogram(max_value=1.0)
        hist.record(30.0)  # beyond max_value: catch-all bucket
        hist.record(0.5)
        assert hist.count == 2
        assert hist.percentile(99.0) == pytest.approx(30.0)

    def test_empty_and_invalid(self):
        hist = LatencyHistogram()
        assert hist.percentile(99.0) == 0.0
        assert hist.summary()["count"] == 0
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.record(-1.0)


class TestMergeAndTransport:
    def test_merge_equals_recording_everything_in_one(self):
        rng = random.Random(11)
        samples = [rng.expovariate(100.0) for _ in range(2000)]
        whole = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for i, s in enumerate(samples):
            whole.record(s)
            (left if i % 2 else right).record(s)
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count
        assert left.sum == pytest.approx(whole.sum)
        assert left.percentile(99.0) == whole.percentile(99.0)

    def test_merge_rejects_different_bucket_layout(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(buckets_per_decade=10))

    def test_dict_round_trip(self):
        hist = LatencyHistogram()
        for ms in (1, 3, 9, 27, 81):
            hist.record(ms / 1e3)
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.summary() == hist.summary()

    def test_empty_dict_round_trip(self):
        clone = LatencyHistogram.from_dict(LatencyHistogram().to_dict())
        assert clone.count == 0
        assert clone.min_seen == math.inf
