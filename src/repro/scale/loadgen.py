"""Open-loop load generation against live servents, over real TCP.

The locust-style harness the ROADMAP asks for, with the one property a
saturation measurement cannot live without: the generator is
**open-loop**.  Request issue times are drawn up front from a seeded
arrival process (`exponential`/`lognormal`/`fixed` think-time between
arrivals, scaled to the offered rate) and the scheduler fires each
request at its precomputed absolute deadline *whether or not earlier
requests have completed*.  A closed-loop driver (issue, await reply,
think, repeat) slows down exactly when the system under test does,
hiding queueing delay — the "coordinated omission" failure mode; an
open-loop driver keeps offering load, so a saturated servent shows up
as growing latency percentiles and shed/timeout counts, which is the
truth a saturation curve must plot.

Pieces:

* :func:`build_schedule` — the deterministic (seeded) arrival plan:
  weighted task mix (``query`` / ``browse`` / ``idle``), think-time
  distribution, per-task target assignment.  Same seed ⇒ same plan.
* :class:`LoadClient` — one peer-handshaked TCP connection to a servent;
  issues Query/Ping descriptors without awaiting drain (issuing must
  never block on the target) and resolves replies by GUID.
* :class:`LoadGenerator` — runs a plan against a set of servent
  addresses, recording per-request latency into a
  :class:`~repro.scale.histogram.LatencyHistogram`, timeouts, errors,
  and the schedule-fidelity figures (`schedule_stretch`,
  `max_lateness_seconds`) that *prove* the run stayed open-loop.
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field

from repro.live.connection import ConnectionConfig, aclose_writer, dial_peer
from repro.live.framing import StreamDecoder
from repro.network.protocol import (
    PAYLOAD_PONG,
    PAYLOAD_QUERY_HIT,
    PingMessage,
    ProtocolError,
    QueryMessage,
    encode_message,
)
from repro.obs.logging import get_logger
from repro.obs.tracing import traced_guid
from repro.scale.histogram import LatencyHistogram

__all__ = [
    "LoadClient",
    "LoadConfig",
    "LoadGenerator",
    "LoadResult",
    "ScheduledTask",
    "TASK_BROWSE",
    "TASK_IDLE",
    "TASK_QUERY",
    "build_schedule",
]

_log = get_logger("scale.loadgen")

#: a Query descriptor answered by a QueryHit routed back to us.
TASK_QUERY = "query"
#: a TTL-1 Ping answered by the peer's Pong — the cheap liveness probe
#: real clients interleave with searches.
TASK_BROWSE = "browse"
#: an arrival slot that sends nothing (a user pausing mid-session);
#: keeps the arrival process realistic without adding wire traffic.
TASK_IDLE = "idle"

_THINK_DISTRIBUTIONS = ("exponential", "lognormal", "fixed")

#: client ids live far above any plausible worker node id so a load
#: client can never be mistaken for (or collide with) an overlay node.
CLIENT_ID_BASE = 1_000_000


@dataclass(frozen=True)
class LoadConfig:
    """One load step: offered rate, mix, think-time shape, timeouts."""

    #: offered arrival rate (tasks per second, idle slots included).
    rps: float
    #: seconds of offered load.
    duration: float
    #: arrival-process seed; the whole schedule derives from it.
    seed: int = 0
    #: weighted task mix, locust-style.
    mix: tuple[tuple[str, float], ...] = (
        (TASK_QUERY, 0.8),
        (TASK_BROWSE, 0.1),
        (TASK_IDLE, 0.1),
    )
    #: inter-arrival (think-time) distribution: ``exponential`` is a
    #: Poisson arrival process, ``lognormal`` is burstier (heavy right
    #: tail), ``fixed`` is a metronome.
    think: str = "exponential"
    #: lognormal shape parameter sigma (ignored by the others).
    think_sigma: float = 0.6
    #: a request unanswered for this long is counted as timed out.
    request_timeout: float = 2.0
    #: TTL on issued Query descriptors.
    max_ttl: int = 7
    #: GUID-sampled tracing: 0 disables, N marks the 1-in-N GUID subset
    #: (``traced_guid``) the *workers'* tracers record spans for — the
    #: generator mints sequential GUIDs, so the sampling decision needs
    #: no coordination, only the same modulus on both sides.
    trace_sample: int = 0

    def __post_init__(self) -> None:
        if self.rps <= 0:
            raise ValueError("rps must be positive")
        if self.trace_sample < 0:
            raise ValueError("trace_sample must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.think not in _THINK_DISTRIBUTIONS:
            raise ValueError(f"think must be one of {_THINK_DISTRIBUTIONS}")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if not self.mix or any(w < 0 for _, w in self.mix):
            raise ValueError("mix weights must be non-negative")
        if sum(w for _, w in self.mix) <= 0:
            raise ValueError("mix needs at least one positive weight")
        known = (TASK_QUERY, TASK_BROWSE, TASK_IDLE)
        unknown = [k for k, _ in self.mix if k not in known]
        if unknown:
            raise ValueError(f"unknown task kinds {unknown}")


@dataclass(frozen=True)
class ScheduledTask:
    """One planned arrival: when, what, against whom."""

    at: float  # seconds from run start
    kind: str
    target: int  # index into the generator's client list
    term: str  # search term (queries only)


def _think_time(rng: random.Random, config: LoadConfig, mean: float) -> float:
    if config.think == "exponential":
        return rng.expovariate(1.0 / mean)
    if config.think == "lognormal":
        sigma = config.think_sigma
        mu = math.log(mean) - sigma * sigma / 2.0  # E[X] == mean
        return rng.lognormvariate(mu, sigma)
    return mean  # fixed


def build_schedule(
    config: LoadConfig, vocabulary: list[str], n_targets: int
) -> list[ScheduledTask]:
    """The full arrival plan for one load step, deterministically.

    Everything a run will do — arrival instants, task kinds, target
    servents, query terms — is sampled here from ``config.seed``, so a
    schedule can be rebuilt bit-identically for replay or comparison,
    and the live run's only job is to *honour* the timestamps.
    """
    if n_targets < 1:
        raise ValueError("need at least one target")
    if not vocabulary:
        raise ValueError("need a non-empty vocabulary")
    rng = random.Random(config.seed)
    kinds = [kind for kind, _ in config.mix]
    weights = [weight for _, weight in config.mix]
    mean = 1.0 / config.rps
    schedule: list[ScheduledTask] = []
    t = 0.0
    while True:
        t += _think_time(rng, config, mean)
        if t >= config.duration:
            return schedule
        kind = rng.choices(kinds, weights)[0]
        term = (
            vocabulary[rng.randrange(len(vocabulary))]
            if kind == TASK_QUERY
            else ""
        )
        schedule.append(
            ScheduledTask(
                at=t, kind=kind, target=rng.randrange(n_targets), term=term
            )
        )


class LoadClient:
    """One load-generating peer attached to a live servent.

    Handshakes exactly like a real peer (so the servent treats it as a
    leaf connection), then *originates* descriptors: Query frames whose
    QueryHits the servent routes back to this connection by GUID, and
    TTL-1 Pings answered by Pongs.  Frames forwarded our way by the
    servent's flooding (we are a connection like any other) are ignored.

    ``issue_*`` writes to the transport without awaiting ``drain()`` —
    open-loop issuing must never block on the target; if the servent
    stalls, bytes queue in the kernel/transport buffer and the requests
    age into timeouts, which is precisely the signal being measured.
    """

    def __init__(
        self,
        client_id: int,
        host: str,
        port: int,
        *,
        on_reply,
        config: ConnectionConfig | None = None,
        max_ttl: int = 7,
    ) -> None:
        self.client_id = client_id
        self.host = host
        self.port = port
        self.max_ttl = max_ttl
        self._on_reply = on_reply
        self._config = config or ConnectionConfig(
            keepalive_interval=0.0, idle_timeout=0.0
        )
        self._decoder = StreamDecoder(
            max_payload_length=self._config.max_payload_length
        )
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task | None = None
        self.peer_id: int | None = None
        #: frames the servent pushed at us that answered nothing we
        #: asked (its floods and keepalives) — dead-ended here.
        self.frames_ignored = 0

    async def connect(self) -> None:
        self._reader, self._writer, self.peer_id = await dial_peer(
            self.host, self.port, self.client_id, self._config
        )
        self._read_task = asyncio.create_task(self._read_loop())

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    def issue(self, kind: str, term: str, guid: int) -> None:
        """Write one request frame; raises ``OSError`` if the link died."""
        if not self.connected:
            raise OSError("connection to target is down")
        if kind == TASK_QUERY:
            frame = encode_message(
                guid, self.max_ttl, 0, QueryMessage(min_speed=0, search=term)
            )
        else:
            frame = encode_message(guid, 1, 0, PingMessage())
        self._writer.write(frame)

    async def _read_loop(self) -> None:
        try:
            while True:
                chunk = await self._reader.read(65536)
                if not chunk:
                    return  # EOF: servent went away
                for header, _payload in self._decoder.feed(chunk):
                    if header.payload_type in (PAYLOAD_QUERY_HIT, PAYLOAD_PONG):
                        self._on_reply(header.guid)
                    else:
                        self.frames_ignored += 1
        except (OSError, ProtocolError, asyncio.CancelledError):
            pass

    async def aclose(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            await asyncio.gather(self._read_task, return_exceptions=True)
            self._read_task = None
        if self._writer is not None:
            await aclose_writer(self._writer)
            self._writer = None


@dataclass
class LoadResult:
    """What one load step measured."""

    offered_rps: float
    duration: float
    scheduled: int
    issued: dict[str, int] = field(default_factory=dict)
    idle_slots: int = 0
    completed: int = 0
    timeouts: int = 0
    errors: int = 0
    #: requests whose GUID fell in the traced 1-in-N subset.
    traced: int = 0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    achieved_rps: float = 0.0
    schedule_stretch: float = 0.0
    max_lateness_seconds: float = 0.0

    @property
    def requests(self) -> int:
        """Wire requests issued (idle slots excluded)."""
        return sum(self.issued.values())

    @property
    def error_rate(self) -> float:
        """Timeouts + transport errors over issued requests — the
        shed/error rate axis of the saturation curve."""
        attempted = self.requests + self.errors
        return (self.timeouts + self.errors) / attempted if attempted else 0.0

    def to_dict(self) -> dict:
        return {
            "offered_rps": self.offered_rps,
            "duration_seconds": self.duration,
            "scheduled": self.scheduled,
            "issued": dict(self.issued),
            "idle_slots": self.idle_slots,
            "requests": self.requests,
            "completed": self.completed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "traced": self.traced,
            "error_rate": self.error_rate,
            "achieved_rps": self.achieved_rps,
            "schedule_stretch": self.schedule_stretch,
            "max_lateness_seconds": self.max_lateness_seconds,
            "latency": self.histogram.summary(),
        }


class LoadGenerator:
    """Drive one open-loop load step against a set of servent addresses."""

    def __init__(
        self,
        addresses: list[tuple[str, int]],
        vocabulary: list[str],
        config: LoadConfig,
        *,
        client_config: ConnectionConfig | None = None,
        client_id_base: int = CLIENT_ID_BASE,
        histogram: LatencyHistogram | None = None,
    ) -> None:
        if not addresses:
            raise ValueError("need at least one target address")
        self.addresses = list(addresses)
        self.vocabulary = list(vocabulary)
        self.config = config
        self._client_config = client_config
        self._client_id_base = client_id_base
        self.histogram = histogram or LatencyHistogram()
        self._clients: list[LoadClient] = []
        self._pending: dict[int, tuple[float, str]] = {}
        # Seed-disjoint GUID block: servents deduplicate descriptors by
        # GUID in their reply-routing tables, so a second generator run
        # against the *same warm cluster* (every ramp step) must never
        # re-mint an earlier run's GUIDs — its requests would be
        # silently dropped and misread as timeouts.  Ramps vary the
        # seed per step, which lands each step in its own 2^32 block.
        self._next_guid = (
            (client_id_base << 64)
            + ((config.seed % (1 << 30)) << 32)
            + 1
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._result: LoadResult | None = None

    # -- reply path -------------------------------------------------------
    def _fresh_guid(self) -> int:
        guid = self._next_guid
        self._next_guid += 1
        return guid % (1 << 128)

    def _on_reply(self, guid: int) -> None:
        entry = self._pending.pop(guid, None)
        if entry is None:
            return  # duplicate hit for an answered/expired request
        t_issue, _kind = entry
        self.histogram.record(self._loop.time() - t_issue)
        self._result.completed += 1

    def _sweep_pending(self, now: float) -> None:
        cutoff = now - self.config.request_timeout
        expired = [g for g, (t, _k) in self._pending.items() if t <= cutoff]
        for guid in expired:
            del self._pending[guid]
            self._result.timeouts += 1

    # -- the run ----------------------------------------------------------
    async def run(self) -> LoadResult:
        """Execute the schedule; returns the step's measurements."""
        schedule = build_schedule(
            self.config, self.vocabulary, len(self.addresses)
        )
        self._loop = asyncio.get_running_loop()
        self._result = result = LoadResult(
            offered_rps=self.config.rps,
            duration=self.config.duration,
            scheduled=len(schedule),
            histogram=self.histogram,
        )
        self._clients = [
            LoadClient(
                self._client_id_base + i,
                host,
                port,
                on_reply=self._on_reply,
                config=self._client_config,
                max_ttl=self.config.max_ttl,
            )
            for i, (host, port) in enumerate(self.addresses)
        ]
        try:
            await asyncio.gather(*(c.connect() for c in self._clients))
            await self._issue_all(schedule, result)
            await self._drain(result)
        finally:
            await asyncio.gather(*(c.aclose() for c in self._clients))
        return result

    async def _issue_all(
        self, schedule: list[ScheduledTask], result: LoadResult
    ) -> None:
        loop = self._loop
        sweep_every = min(0.1, self.config.request_timeout / 4.0)
        next_sweep = loop.time() + sweep_every
        t0 = loop.time()
        first_offset = last_offset = None
        for task in schedule:
            deadline = t0 + task.at
            now = loop.time()
            if now < deadline:
                await asyncio.sleep(deadline - now)
                now = loop.time()
            # behind schedule: issue immediately — an open-loop
            # generator catches up by bursting, never by rescheduling.
            offset = now - t0
            if first_offset is None:
                first_offset = offset
            last_offset = offset
            lateness = offset - task.at
            if lateness > result.max_lateness_seconds:
                result.max_lateness_seconds = lateness
            if task.kind == TASK_IDLE:
                result.idle_slots += 1
            else:
                guid = self._fresh_guid()
                try:
                    self._clients[task.target].issue(
                        task.kind, task.term, guid
                    )
                except OSError:
                    result.errors += 1
                else:
                    self._pending[guid] = (now, task.kind)
                    result.issued[task.kind] = (
                        result.issued.get(task.kind, 0) + 1
                    )
                    if self.config.trace_sample and traced_guid(
                        guid, self.config.trace_sample
                    ):
                        result.traced += 1
            if now >= next_sweep:
                self._sweep_pending(now)
                next_sweep = now + sweep_every
        if schedule and first_offset is not None:
            planned_span = schedule[-1].at - schedule[0].at
            actual_span = last_offset - first_offset
            if planned_span > 0:
                result.schedule_stretch = max(
                    0.0, actual_span / planned_span - 1.0
                )
            result.achieved_rps = result.requests / self.config.duration

    async def _drain(self, result: LoadResult) -> None:
        """Give in-flight requests one timeout window to resolve, then
        expire whatever is left (the stragglers *are* timeouts)."""
        loop = self._loop
        grace_end = loop.time() + self.config.request_timeout
        while self._pending and loop.time() < grace_end:
            await asyncio.sleep(0.02)
            self._sweep_pending(loop.time())
        result.timeouts += len(self._pending)
        self._pending.clear()
