"""Out-of-core columnar trace store (mmap-backed block files).

The paper's evaluation runs over 10,514,090 queries / ~3.25M query–reply
pairs — far more than the in-memory :class:`~repro.trace.blocks.PairBlock`
pipeline should ever hold at once.  This module persists a trace as one
append-only file of fixed little-endian columnar segments, so that

* :class:`TraceStoreWriter` streams pairs to disk in chunks — ``tracegen``
  never materializes the full trace (O(chunk) memory while writing), and
* :class:`TraceStoreReader` serves zero-copy ``np.memmap`` views block by
  block — evaluation streams the trace with O(block) resident memory,
  however large the file grows.

File layout (all integers little-endian)::

    header   (32 B)  magic "RPTRACE1" | version u32 | flags u32
                     | block_size u64 | meta fingerprint u64
    block*           block header (32 B): magic "RPTB" | codecs u32
                     | n_pairs u64 | blake2b-128 fingerprint (16 B)
                     version 2 only: one u64 stored length per segment
                     followed by the column segments:
                     sources  int64[n]
                     repliers int64[n]
                     packed   int64[n]   (only when flags bit 0 is set)
    footer   index:  one 32 B entry per block
                     (block_offset u64 | n_pairs u64 | fingerprint 16 B)
             trailer (40 B): magic "RPTFOOT1" | index_offset u64
                     | n_blocks u64 | total_pairs u64
                     | index crc32 u32 | version u32

Version 1 stores every segment raw (and writes byte-identical files to
earlier releases: the codecs field is the old zero pad, the meta
fingerprint the old reserved word).  Version 2 — written when the writer
is given a ``codec`` — may compress cold column segments: each segment
carries its own codec byte (packed into the block header's ``codecs``
u32; 0 = raw, 1 = zlib), and a segment is stored compressed only when
that actually shrinks it.  Compression is transparent on read, and block
fingerprints are always computed over the *uncompressed* column bytes,
so bit-identity checks, the content-addressed ruleset cache, and
torn-tail recovery are unchanged.  Raw segments are served as zero-copy
memmaps in both versions; compressed segments decompress into ordinary
arrays (the space/zero-copy trade-off is per segment).

The per-block fingerprint is byte-identical to
:meth:`PairBlock.fingerprint` (blake2b-128 over the source column bytes
then the replier column bytes), so store-resident blocks plug straight
into the content-addressed ruleset cache without re-hashing.

Durability mirrors the WAL torn-tail semantics of ``repro.persist``: the
footer is written only on a clean :meth:`TraceStoreWriter.close`, and a
reader that finds a missing, truncated, or corrupt footer falls back to
scanning block headers from the top of the file — verifying each block's
fingerprint — and recovers everything up to the last complete, intact
block.  A mid-write crash therefore loses at most the block being
written, never the store.

Readers own OS resources (a header file handle plus per-block mmaps) and
support ``close()`` / ``with``: closing releases every still-live block
mapping, which unblocks file deletion on platforms that lock mapped
files and keeps fd usage flat over long partitioned runs.  Block views
handed out before ``close()`` must not be used afterwards.
"""

from __future__ import annotations

import hashlib
import os
import struct
import weakref
import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.trace.blocks import PairBlock

__all__ = [
    "TraceStoreError",
    "TraceStoreCorruption",
    "TraceStoreWriter",
    "TraceStoreReader",
    "write_trace_store",
    "iter_store_blocks",
]

_HEADER = struct.Struct("<8sIIQQ")
_BLOCK_HEADER = struct.Struct("<4sIQ16s")
_INDEX_ENTRY = struct.Struct("<QQ16s")
_TRAILER = struct.Struct("<8sQQQII")

_MAGIC = b"RPTRACE1"
_BLOCK_MAGIC = b"RPTB"
_FOOTER_MAGIC = b"RPTFOOT1"
#: version 1 — raw segments only; version 2 — per-segment codecs.
_VERSION_RAW = 1
_VERSION_CODECS = 2
_VERSIONS = (_VERSION_RAW, _VERSION_CODECS)

#: flags bit 0 — packed-key segments are present after each replier segment.
_FLAG_PACKED = 1

#: per-segment codec ids (one byte each inside the block header's u32).
_CODEC_RAW = 0
_CODEC_ZLIB = 1
_CODEC_ZSTD = 2
_CODEC_NAMES = {None: None, "zlib": _CODEC_ZLIB, "zstd": _CODEC_ZSTD}


def _load_zstd():
    """(compress(data, level), decompress(data)) via whichever zstd
    binding exists — the stdlib module (3.14+) or the ``zstandard``
    package — or ``None`` when the interpreter has neither.  Codec id 2
    is defined by the format regardless; availability only gates
    whether *this* process can write or read such segments."""
    try:
        from compression import zstd as _zstd_mod  # Python >= 3.14

        return (
            lambda data, level: _zstd_mod.compress(data, level),
            _zstd_mod.decompress,
        )
    except ImportError:
        pass
    try:
        import zstandard as _zstandard
    except ImportError:
        return None
    return (
        lambda data, level: _zstandard.ZstdCompressor(level=level).compress(data),
        lambda data: _zstandard.ZstdDecompressor().decompress(data),
    )


_ZSTD = _load_zstd()

_I8 = np.dtype("<i8")
_ITEMSIZE = _I8.itemsize


class TraceStoreError(Exception):
    """The file is not a trace store (bad magic/version/arguments)."""


class TraceStoreCorruption(TraceStoreError):
    """The store exists but its contents fail an integrity check."""


@dataclass(frozen=True)
class _BlockEntry:
    """One footer-index row: where a block's segments live."""

    offset: int  # file offset of the block *header*
    n_pairs: int
    fingerprint: bytes  # blake2b-128 raw digest


def _column_bytes(array: np.ndarray) -> bytes:
    return np.ascontiguousarray(array, dtype=_I8).tobytes()


def _block_digest(sources: np.ndarray, repliers: np.ndarray) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(_column_bytes(sources))
    digest.update(_column_bytes(repliers))
    return digest.digest()


class TraceStoreWriter:
    """Append-only chunked writer of a trace store file.

    ``append(sources, repliers)`` buffers at most one block's worth of
    pairs; every time the buffer reaches ``block_size`` a complete block
    is flushed to disk, so writing a 100M-pair trace needs O(block_size)
    memory.  ``append_block`` writes an already-built
    :class:`~repro.trace.blocks.PairBlock` directly, reusing its memoized
    packed keys and fingerprint (each block's keys are packed exactly
    once, at write time — readers hand the stored segment back).

    ``codec="zlib"`` (or ``"zstd"``, when the interpreter ships a zstd
    binding) writes a version-2 store whose column segments are
    individually compressed when that shrinks them (cold-segment
    compression for archival traces); fingerprints stay over the
    uncompressed bytes, and each segment records its own codec byte so
    readers never guess.  ``meta_fingerprint`` stamps a caller-chosen
    64-bit provenance tag (e.g. a config+seed hash — see
    :func:`repro.trace.cache.cached_trace_store`) into the file header.

    The footer index lands only in :meth:`close`; a crash (or an
    exception inside the ``with`` block) leaves an append-only prefix
    that :class:`TraceStoreReader` recovers up to the last complete
    block.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        block_size: int = 10_000,
        include_packed: bool = True,
        codec: str | None = None,
        compress_level: int = 6,
        meta_fingerprint: int = 0,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if codec not in _CODEC_NAMES:
            raise ValueError(
                f"unknown codec {codec!r} (supported: {sorted(k for k in _CODEC_NAMES if k)})"
            )
        if codec == "zstd" and _ZSTD is None:
            raise TraceStoreError(
                "codec 'zstd' needs a zstd binding (stdlib compression.zstd "
                "on Python 3.14+, or the zstandard package); this "
                "interpreter has neither — use codec='zlib' instead"
            )
        if not 0 <= int(meta_fingerprint) < 1 << 64:
            raise ValueError("meta_fingerprint must fit an unsigned 64-bit field")
        self.path = os.fspath(path)
        self.block_size = int(block_size)
        self.include_packed = bool(include_packed)
        self.codec = codec
        self.compress_level = int(compress_level)
        self.meta_fingerprint = int(meta_fingerprint)
        self.version = _VERSION_CODECS if codec is not None else _VERSION_RAW
        self._entries: list[_BlockEntry] = []
        self._pending: list[np.ndarray] = []  # interleaved (src, rep) chunks
        self._pending_pairs = 0
        self._closed = False
        self._fh = open(self.path, "wb")
        flags = _FLAG_PACKED if self.include_packed else 0
        self._fh.write(
            _HEADER.pack(
                _MAGIC, self.version, flags, self.block_size, self.meta_fingerprint
            )
        )

    # -- appending ----------------------------------------------------------
    def append(self, sources: np.ndarray, repliers: np.ndarray) -> int:
        """Buffer a chunk of pairs, flushing every completed block.

        Chunks may be any length (including spanning several blocks);
        returns the number of *blocks* flushed by this call.
        """
        self._check_open()
        sources = np.asarray(sources, dtype=np.int64)
        repliers = np.asarray(repliers, dtype=np.int64)
        if sources.shape != repliers.shape or sources.ndim != 1:
            raise ValueError("sources and repliers must be matching 1-D arrays")
        self._pending.append(sources)
        self._pending.append(repliers)
        self._pending_pairs += len(sources)
        flushed = 0
        while self._pending_pairs >= self.block_size:
            self._flush_block(self.block_size)
            flushed += 1
        return flushed

    def append_block(self, block: PairBlock) -> None:
        """Write one pre-built block as-is (any length).

        Only valid while no partial chunk is buffered — interleaving
        buffered pairs with whole blocks would reorder the trace.
        """
        self._check_open()
        if self._pending_pairs:
            raise TraceStoreError(
                "append_block with buffered pairs would reorder the trace"
            )
        if len(block) == 0:
            return
        self._write_block(block)

    def _flush_block(self, n_pairs: int) -> None:
        """Assemble ``n_pairs`` buffered pairs into one block and write it."""
        sources = np.empty(n_pairs, dtype=np.int64)
        repliers = np.empty(n_pairs, dtype=np.int64)
        filled = 0
        while filled < n_pairs:
            src, rep = self._pending[0], self._pending[1]
            take = min(len(src), n_pairs - filled)
            sources[filled : filled + take] = src[:take]
            repliers[filled : filled + take] = rep[:take]
            if take == len(src):
                del self._pending[:2]
            else:
                self._pending[0] = src[take:]
                self._pending[1] = rep[take:]
            filled += take
        self._pending_pairs -= n_pairs
        self._write_block(
            PairBlock(sources=sources, repliers=repliers, index=len(self._entries))
        )

    def _write_block(self, block: PairBlock) -> None:
        offset = self._fh.tell()
        fingerprint = bytes.fromhex(block.fingerprint())
        # packed_keys() is memoized on the block: built blocks pack
        # exactly once here; buffered blocks pack on first use.
        segments = [_column_bytes(block.sources), _column_bytes(block.repliers)]
        if self.include_packed:
            segments.append(_column_bytes(block.packed_keys()))
        if self.version == _VERSION_RAW:
            self._fh.write(
                _BLOCK_HEADER.pack(_BLOCK_MAGIC, 0, len(block), fingerprint)
            )
            for segment in segments:
                self._fh.write(segment)
        else:
            codec_id = _CODEC_NAMES[self.codec]
            codecs = 0
            payloads = []
            for k, raw in enumerate(segments):
                if codec_id == _CODEC_ZSTD:
                    compressed = _ZSTD[0](raw, self.compress_level)
                else:
                    compressed = zlib.compress(raw, self.compress_level)
                if len(compressed) < len(raw):
                    payloads.append(compressed)
                    codecs |= codec_id << (8 * k)
                else:
                    payloads.append(raw)  # incompressible: keep raw + memmap
            self._fh.write(
                _BLOCK_HEADER.pack(_BLOCK_MAGIC, codecs, len(block), fingerprint)
            )
            self._fh.write(
                struct.pack(f"<{len(payloads)}Q", *(len(p) for p in payloads))
            )
            for payload in payloads:
                self._fh.write(payload)
        self._entries.append(_BlockEntry(offset, len(block), fingerprint))

    # -- lifecycle ----------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return len(self._entries)

    @property
    def n_pairs(self) -> int:
        return sum(e.n_pairs for e in self._entries)

    @property
    def pending_pairs(self) -> int:
        """Buffered pairs not yet part of a complete block."""
        return self._pending_pairs

    def close(self, *, drop_partial: bool = True) -> None:
        """Flush, write the footer index, fsync, and close.

        ``drop_partial=False`` writes any buffered tail as one final
        short block (analyses that must not lose data); the default
        mirrors the paper's fixed-size blocks and discards it.
        """
        if self._closed:
            return
        if self._pending_pairs and not drop_partial:
            self._flush_block(self._pending_pairs)
        self._pending.clear()
        self._pending_pairs = 0
        index_offset = self._fh.tell()
        index = b"".join(
            _INDEX_ENTRY.pack(e.offset, e.n_pairs, e.fingerprint)
            for e in self._entries
        )
        self._fh.write(index)
        self._fh.write(
            _TRAILER.pack(
                _FOOTER_MAGIC,
                index_offset,
                len(self._entries),
                self.n_pairs,
                zlib.crc32(index),
                self.version,
            )
        )
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._closed = True

    def abandon(self) -> None:
        """Close the file *without* a footer (simulates a crash mid-write)."""
        if not self._closed:
            self._fh.flush()
            self._fh.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise TraceStoreError("writer is closed")

    def __enter__(self) -> "TraceStoreWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        # A clean exit finalizes the store; an exception leaves the
        # append-only prefix for footer-less recovery (torn-tail
        # semantics), exactly like a crash would.
        if exc_type is None:
            self.close()
        else:
            self.abandon()


class TraceStoreReader:
    """Zero-copy block reader over a trace store file.

    Every :meth:`block` call maps only that block's byte range
    (``np.memmap`` with an explicit offset), so iterating a 10GB store
    keeps O(block_size) pages resident: each yielded block's mappings
    are released as soon as the consumer drops the block.  Compressed
    (version 2) segments decompress into ordinary arrays instead —
    identical contents, no mapping.

    Opening prefers the footer index (O(1), trusted after its CRC
    check).  A missing or corrupt footer triggers a header scan that
    verifies each block's fingerprint and stops at the first torn or
    corrupt block (``recovered`` is then True).  ``verify=True`` forces
    the fingerprint sweep even when the footer is intact, truncating the
    visible store at the first mismatching block.

    Readers are context managers: :meth:`close` (idempotent) drops the
    header file handle and every still-live block mapping the reader
    created, so long partitioned runs do not accumulate fds and the file
    can be deleted immediately on platforms that lock mapped files.
    Blocks obtained from a reader are invalidated by its ``close()``.
    """

    def __init__(self, path: str | os.PathLike, *, verify: bool = False) -> None:
        # Lifetime fields first: __del__ must be safe even when opening
        # fails before the file handle exists.
        self._closed = False
        self._fh = None
        self._live_maps: "weakref.WeakSet" = weakref.WeakSet()
        self._layouts: dict[int, tuple[tuple[int, ...], tuple[int, ...], int]] = {}
        self.path = os.fspath(path)
        self._size = os.path.getsize(self.path)
        self.recovered = False
        self._fh = open(self.path, "rb")
        header = self._fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            self.close()
            raise TraceStoreError(f"{self.path}: too short for a trace store")
        magic, version, flags, block_size, meta = _HEADER.unpack(header)
        if magic != _MAGIC:
            self.close()
            raise TraceStoreError(f"{self.path}: bad magic {magic!r}")
        if version not in _VERSIONS:
            self.close()
            raise TraceStoreError(f"{self.path}: unsupported version {version}")
        self.version = int(version)
        self.block_size = int(block_size)
        self.has_packed = bool(flags & _FLAG_PACKED)
        self.meta_fingerprint = int(meta)
        self._n_segments = 3 if self.has_packed else 2
        self._entries = self._load_footer()
        if self._entries is None:
            self._entries = self._scan_blocks()
            self.recovered = True
        elif verify:
            self._entries = self._verified_prefix(self._entries)

    # -- lifecycle ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the header handle and every live block mapping.

        Idempotent (double close is a no-op).  Any block views this
        reader handed out become invalid; using them afterwards is
        undefined, exactly as reading from a closed file would be.
        """
        if self._closed:
            return
        self._closed = True
        for mapping in list(self._live_maps):
            try:
                mapping.close()
            except (BufferError, ValueError):  # still exported elsewhere
                pass
        self._live_maps = weakref.WeakSet()
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def __enter__(self) -> "TraceStoreReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise TraceStoreError(f"{self.path}: reader is closed")

    # -- opening ------------------------------------------------------------
    def _load_footer(self) -> list[_BlockEntry] | None:
        """Parse the footer index; None when absent/torn/corrupt."""
        if self._size < _HEADER.size + _TRAILER.size:
            return None
        fh = self._fh
        fh.seek(self._size - _TRAILER.size)
        magic, index_offset, n_blocks, total_pairs, crc, version = _TRAILER.unpack(
            fh.read(_TRAILER.size)
        )
        if magic != _FOOTER_MAGIC or version != self.version:
            return None
        index_size = n_blocks * _INDEX_ENTRY.size
        if index_offset + index_size + _TRAILER.size != self._size:
            return None
        fh.seek(index_offset)
        index = fh.read(index_size)
        if len(index) != index_size or zlib.crc32(index) != crc:
            return None
        entries = [
            _BlockEntry(*_INDEX_ENTRY.unpack_from(index, off))
            for off in range(0, index_size, _INDEX_ENTRY.size)
        ]
        if sum(e.n_pairs for e in entries) != total_pairs:
            return None
        if self.version == _VERSION_RAW:
            for entry in entries:
                if entry.offset + self._block_extent(entry.n_pairs) > index_offset:
                    return None
        else:
            # Compressed blocks have data-dependent extents; bound-check
            # the header area per block and rely on the index CRC plus
            # per-block stored lengths for the rest.
            previous = _HEADER.size
            for entry in entries:
                if entry.offset < previous:
                    return None
                header_end = (
                    entry.offset + _BLOCK_HEADER.size + 8 * self._n_segments
                )
                if header_end > index_offset:
                    return None
                previous = entry.offset + _BLOCK_HEADER.size
        return entries

    def _block_extent(self, n_pairs: int) -> int:
        return _BLOCK_HEADER.size + self._n_segments * n_pairs * _ITEMSIZE

    def _scan_blocks(self) -> list[_BlockEntry]:
        """Walk block headers from the top, keeping verified blocks.

        Mirrors WAL torn-tail recovery: the first header that is
        truncated, mis-tagged, out of bounds, or whose columns fail the
        fingerprint check ends the store.
        """
        entries: list[_BlockEntry] = []
        fh = self._fh
        offset = _HEADER.size
        while True:
            fh.seek(offset)
            raw = fh.read(_BLOCK_HEADER.size)
            if len(raw) < _BLOCK_HEADER.size:
                break
            magic, _codecs, n_pairs, fingerprint = _BLOCK_HEADER.unpack(raw)
            if magic != _BLOCK_MAGIC or n_pairs < 1:
                break
            if self.version == _VERSION_RAW:
                extent = self._block_extent(n_pairs)
            else:
                lengths_raw = fh.read(8 * self._n_segments)
                if len(lengths_raw) < 8 * self._n_segments:
                    break  # torn tail inside the length area
                lengths = struct.unpack(f"<{self._n_segments}Q", lengths_raw)
                if any(length < 1 or length > self._size for length in lengths):
                    break
                extent = _BLOCK_HEADER.size + 8 * self._n_segments + sum(lengths)
            if offset + extent > self._size:
                break  # torn tail: the block's columns never fully landed
            entry = _BlockEntry(offset, n_pairs, fingerprint)
            try:
                sources, repliers = self._read_columns(entry)
            except TraceStoreCorruption:
                break  # garbage where a compressed segment should be
            if _block_digest(sources, repliers) != fingerprint:
                break
            entries.append(entry)
            offset += extent
        return entries

    def _verified_prefix(self, entries: list[_BlockEntry]) -> list[_BlockEntry]:
        good: list[_BlockEntry] = []
        for entry in entries:
            try:
                sources, repliers = self._read_columns(entry)
            except TraceStoreCorruption:
                break
            if _block_digest(sources, repliers) != entry.fingerprint:
                break
            good.append(entry)
        return good

    # -- reading ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def n_blocks(self) -> int:
        return len(self._entries)

    @property
    def n_pairs(self) -> int:
        return sum(e.n_pairs for e in self._entries)

    def block_pairs(self) -> list[int]:
        """Per-block pair counts, in block order (feeds shard planning)."""
        return [e.n_pairs for e in self._entries]

    def _memmap(self, offset: int, n_items: int) -> np.ndarray:
        """One tracked read-only memmap covering ``n_items`` int64s."""
        mapped = np.memmap(
            self.path, dtype=_I8, mode="r", offset=offset, shape=(n_items,)
        )
        # np.memmap keeps the underlying mmap (and its dup'd fd) on the
        # array; track it weakly so close() can release still-live
        # mappings without pinning dropped blocks in memory.
        self._live_maps.add(mapped._mmap)
        return mapped

    def _layout(
        self, entry: _BlockEntry
    ) -> tuple[tuple[int, ...], tuple[int, ...], int]:
        """(per-segment codecs, stored lengths, payload offset) — v2 only."""
        cached = self._layouts.get(entry.offset)
        if cached is not None:
            return cached
        fh = self._fh
        fh.seek(entry.offset)
        raw = fh.read(_BLOCK_HEADER.size + 8 * self._n_segments)
        if len(raw) < _BLOCK_HEADER.size + 8 * self._n_segments:
            raise TraceStoreCorruption(f"{self.path}: truncated block header")
        magic, codecs_word, n_pairs, _fingerprint = _BLOCK_HEADER.unpack_from(raw)
        if magic != _BLOCK_MAGIC or n_pairs != entry.n_pairs:
            raise TraceStoreCorruption(
                f"{self.path}: block header at {entry.offset} disagrees with index"
            )
        lengths = struct.unpack_from(
            f"<{self._n_segments}Q", raw, _BLOCK_HEADER.size
        )
        codecs = tuple((codecs_word >> (8 * k)) & 0xFF for k in range(self._n_segments))
        layout = (
            codecs,
            lengths,
            entry.offset + _BLOCK_HEADER.size + 8 * self._n_segments,
        )
        self._layouts[entry.offset] = layout
        return layout

    def _read_segment(self, entry: _BlockEntry, segment: int) -> np.ndarray:
        """One column segment of a block, decompressing when needed."""
        nbytes = entry.n_pairs * _ITEMSIZE
        if self.version == _VERSION_RAW:
            data = entry.offset + _BLOCK_HEADER.size
            return self._memmap(data + segment * nbytes, entry.n_pairs)
        codecs, lengths, payload = self._layout(entry)
        offset = payload + sum(lengths[:segment])
        codec = codecs[segment]
        if codec == _CODEC_RAW:
            if lengths[segment] != nbytes:
                raise TraceStoreCorruption(
                    f"{self.path}: raw segment length {lengths[segment]} != {nbytes}"
                )
            return self._memmap(offset, entry.n_pairs)
        if codec not in (_CODEC_ZLIB, _CODEC_ZSTD):
            raise TraceStoreCorruption(
                f"{self.path}: unknown segment codec {codec}"
            )
        if codec == _CODEC_ZSTD and _ZSTD is None:
            raise TraceStoreError(
                f"{self.path}: store has zstd-compressed segments but this "
                "interpreter has no zstd binding (stdlib compression.zstd "
                "on Python 3.14+, or the zstandard package)"
            )
        self._fh.seek(offset)
        compressed = self._fh.read(lengths[segment])
        try:
            if codec == _CODEC_ZSTD:
                raw = _ZSTD[1](compressed)
            else:
                raw = zlib.decompress(compressed)
        except Exception as exc:
            raise TraceStoreCorruption(
                f"{self.path}: segment fails to decompress: {exc}"
            ) from exc
        if len(raw) != nbytes:
            raise TraceStoreCorruption(
                f"{self.path}: segment decompressed to {len(raw)} bytes, "
                f"expected {nbytes}"
            )
        return np.frombuffer(raw, dtype=_I8)

    def _read_columns(self, entry: _BlockEntry) -> tuple[np.ndarray, np.ndarray]:
        return self._read_segment(entry, 0), self._read_segment(entry, 1)

    def block(self, i: int) -> PairBlock:
        """Zero-copy :class:`PairBlock` view of block ``i``.

        The returned block's memoized ``packed_keys`` / ``fingerprint``
        / id validation are pre-seeded from the store, so mining and
        testing it never re-packs or re-hashes — the write-side work is
        reused verbatim.
        """
        self._check_open()
        entry = self._entries[i]
        sources, repliers = self._read_columns(entry)
        block = PairBlock(sources=sources, repliers=repliers, index=i)
        object.__setattr__(block, "_fingerprint", entry.fingerprint.hex())
        object.__setattr__(block, "_ids_validated", True)
        if self.has_packed:
            object.__setattr__(block, "_packed_keys", self._read_segment(entry, 2))
        return block

    def columns(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Raw (sources, repliers) views of block ``i``."""
        self._check_open()
        return self._read_columns(self._entries[i])

    def iter_blocks(self) -> Iterator[PairBlock]:
        """Yield blocks in trace order, mapping one block at a time."""
        for i in range(len(self._entries)):
            yield self.block(i)

    def verify_blocks(self, *, strict: bool = False) -> int:
        """Re-hash every visible block; returns how many are intact.

        Stops counting at the first fingerprint mismatch (the store is
        usable up to — not including — that block).  ``strict=True``
        raises :class:`TraceStoreCorruption` instead of returning a
        short count.
        """
        self._check_open()
        intact = len(self._verified_prefix(self._entries))
        if strict and intact != len(self._entries):
            raise TraceStoreCorruption(
                f"{self.path}: block {intact} fails its fingerprint check "
                f"({intact}/{len(self._entries)} blocks intact)"
            )
        return intact


def write_trace_store(
    path: str | os.PathLike,
    sources: np.ndarray,
    repliers: np.ndarray,
    *,
    block_size: int = 10_000,
    drop_partial: bool = True,
    include_packed: bool = True,
    codec: str | None = None,
    compress_level: int = 6,
    meta_fingerprint: int = 0,
) -> TraceStoreReader:
    """Write in-memory columns as a store file and reopen it for reading."""
    writer = TraceStoreWriter(
        path,
        block_size=block_size,
        include_packed=include_packed,
        codec=codec,
        compress_level=compress_level,
        meta_fingerprint=meta_fingerprint,
    )
    try:
        writer.append(sources, repliers)
    except BaseException:
        writer.abandon()
        raise
    writer.close(drop_partial=drop_partial)
    return TraceStoreReader(path)


def iter_store_blocks(path: str | os.PathLike) -> Iterator[PairBlock]:
    """Stream a store file's blocks (one-shot convenience wrapper).

    The reader is closed when the generator is exhausted or closed, so
    a completed (or abandoned) iteration leaves no mappings behind.
    """
    reader = TraceStoreReader(path)
    try:
        yield from reader.iter_blocks()
    finally:
        reader.close()
