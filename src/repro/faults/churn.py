"""Drive :class:`~repro.network.dynamic.DynamicTopology` from a fault plan.

The same :class:`~repro.faults.plan.FaultPlan` that batters a live
cluster can batter an *offline* strategy run: crash/restart become node
departure/rejoin (edges detached and restored), partition/heal remove
and restore the cross edges of the cut.  Link-level byte faults
(latency, corrupt, stall, …) have no offline analogue and are ignored —
the offline simulators move frames by function call, not by socket.

:class:`TopologyChurn` is a cursor over the plan: feed it the simulation
clock (block index, query index — any monotone time in the plan's units)
and it applies every event that has come due, mutating the topology in
place.  Strategy runs can then re-derive per-block neighbor sets from
``topology.neighbors`` exactly as the live stack re-derives them from
its connection table, so offline and live runs decay under the *same*
seeded churn.
"""

from __future__ import annotations

from repro.faults.plan import CRASH, HEAL, PARTITION, RESTART, FaultPlan
from repro.network.dynamic import DynamicTopology

__all__ = ["TopologyChurn"]

#: events with an offline meaning; everything else is skipped.
_OFFLINE_KINDS = (CRASH, RESTART, PARTITION, HEAL)


class TopologyChurn:
    """Apply a plan's node/partition events to a mutable topology."""

    def __init__(self, topology, plan: FaultPlan) -> None:
        if isinstance(topology, DynamicTopology):
            self.topology = topology
        else:
            self.topology = DynamicTopology.from_topology(topology)
        self.plan = plan
        self._events = [e for e in plan.events if e.kind in _OFFLINE_KINDS]
        self._cursor = 0
        self._down_edges: dict[int, list[tuple[int, int]]] = {}
        self._cut_edges: list[tuple[int, int]] = []
        #: deterministic application log, mirroring the live injector's.
        self.log: list[dict] = []

    # -- state -------------------------------------------------------------
    @property
    def down(self) -> set[int]:
        """Nodes currently departed."""
        return set(self._down_edges)

    def alive(self) -> set[int]:
        return set(range(self.topology.n_nodes)) - self.down

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._events)

    # -- the cursor --------------------------------------------------------
    def advance_to(self, now: float) -> list[dict]:
        """Apply every pending event with ``time <= now``; returns their
        log entries.  Times are in the plan's own units — callers map
        simulation progress (e.g. block index) onto them."""
        applied: list[dict] = []
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].time <= now
        ):
            event = self._events[self._cursor]
            self._cursor += 1
            self._apply(event)
            entry = event.as_dict()
            applied.append(entry)
            self.log.append(entry)
        return applied

    def finish(self) -> list[dict]:
        """Apply everything left and restore the end state (rejoin any
        departed node, heal any cut), exactly like the live injector."""
        applied = self.advance_to(float("inf"))
        for node in sorted(self._down_edges):
            edges = self._down_edges.pop(node)
            self._restore(edges)
            entry = {"time": self.plan.duration, "kind": "final-restart",
                     "node": node}
            applied.append(entry)
            self.log.append(entry)
        if self._cut_edges:
            self._restore(self._cut_edges)
            self._cut_edges = []
            entry = {"time": self.plan.duration, "kind": "final-heal"}
            applied.append(entry)
            self.log.append(entry)
        return applied

    # -- event semantics ---------------------------------------------------
    def _apply(self, event) -> None:
        if event.kind == CRASH:
            self._down_edges[event.node] = self.topology.detach_node(event.node)
        elif event.kind == RESTART:
            edges = self._down_edges.pop(event.node, ())
            self._restore(edges)
        elif event.kind == PARTITION:
            a = set(event.groups[0])
            removed = []
            for u, v in self.topology.edges():
                if (u in a) != (v in a):
                    removed.append((u, v))
            for u, v in removed:
                self.topology.remove_edge(u, v)
            self._cut_edges = removed
        elif event.kind == HEAL:
            self._restore(self._cut_edges)
            self._cut_edges = []

    def _restore(self, edges) -> None:
        for u, v in edges:
            # an edge whose endpoint is departed follows that node: it is
            # re-stashed so the node's own rejoin restores it.  The
            # degree cap can also refuse a restore — that is real churn.
            departed = next(
                (n for n in (u, v) if n in self._down_edges), None
            )
            if departed is not None:
                self._down_edges[departed].append((u, v))
                continue
            if self.topology.can_add_edge(u, v):
                self.topology.add_edge(u, v)
