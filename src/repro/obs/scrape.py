"""Read Prometheus text exposition back into counters.

:meth:`~repro.obs.registry.MetricsRegistry.render` writes the text
format scrapers ingest; this module is the inverse direction, and it
exists because cluster-wide accounting stopped being an in-process
problem: :meth:`repro.live.cluster.LiveCluster.grand_totals` can sum
:class:`~repro.live.stats.NodeStats` objects it holds references to,
but a *multi-process* cluster (:mod:`repro.scale`) only sees its
workers through their ``/metrics`` endpoints.  :func:`scrape_totals`
fetches each worker's exposition over HTTP and folds the samples back
into one ``{metric name: total}`` dict, summing across workers and
label combinations — the cross-process twin of ``grand_totals()``.

Implemented on :mod:`urllib.request` (stdlib only), with per-request
timeouts so one dead worker cannot hang an aggregation sweep.
"""

from __future__ import annotations

import urllib.request

__all__ = [
    "histogram_quantile",
    "merge_histograms",
    "parse_histograms",
    "parse_labels",
    "parse_samples",
    "scrape_text",
    "scrape_totals",
]


def parse_labels(spec: str) -> dict[str, str]:
    """Parse the ``a="x",b="y"`` interior of a label braces block."""
    labels: dict[str, str] = {}
    i = 0
    n = len(spec)
    while i < n:
        eq = spec.index("=", i)
        name = spec[i:eq].strip().lstrip(",").strip()
        if spec[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {spec!r}")
        j = eq + 2
        value: list[str] = []
        while True:
            ch = spec[j]
            if ch == "\\":
                nxt = spec[j + 1]
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt)
                )
                j += 2
            elif ch == '"':
                break
            else:
                value.append(ch)
                j += 1
        labels[name] = "".join(value)
        i = j + 1
    return labels


def parse_samples(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Every ``(name, labels, value)`` sample in one text exposition.

    Comment/``# HELP``/``# TYPE`` lines and blanks are skipped;
    histogram ``_bucket``/``_sum``/``_count`` series appear under their
    suffixed names, exactly as exposed.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            spec, value_part = rest.rsplit("}", 1)
            labels = parse_labels(spec)
        else:
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed sample line {line!r}")
            name, value_part = parts[0], parts[1]
            labels = {}
        value_text = value_part.split()[0]
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
        samples.append((name.strip(), labels, value))
    return samples


def parse_histograms(text: str, *, prefix: str = "") -> dict[str, dict]:
    """Histogram series in one exposition, keyed by base metric name.

    Each value is ``{"buckets": {upper_bound: cumulative_count}, "sum":
    float, "count": float}`` with samples summed across label
    combinations (the ``le`` bound aside), so a multi-labelled histogram
    collapses to one distribution per name.  The ``le`` strings become
    float bounds (``"+Inf"`` → ``inf``).  Only names that actually
    expose ``_bucket`` series are returned — a plain counter that
    happens to end in ``_sum`` is not mistaken for a histogram.
    """
    buckets: dict[str, dict[float, float]] = {}
    sums: dict[str, float] = {}
    counts: dict[str, float] = {}
    for name, labels, value in parse_samples(text):
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            if prefix and not base.startswith(prefix):
                continue
            le = labels.get("le")
            if le is None:
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            per = buckets.setdefault(base, {})
            per[bound] = per.get(bound, 0.0) + value
        elif name.endswith("_sum"):
            base = name[: -len("_sum")]
            sums[base] = sums.get(base, 0.0) + value
        elif name.endswith("_count"):
            base = name[: -len("_count")]
            counts[base] = counts.get(base, 0.0) + value
    return {
        base: {
            "buckets": per,
            "sum": sums.get(base, 0.0),
            "count": counts.get(base, 0.0),
        }
        for base, per in buckets.items()
    }


def merge_histograms(*histogram_maps: dict[str, dict]) -> dict[str, dict]:
    """Merge per-node histogram maps into cluster-wide distributions.

    Cumulative bucket counts sum bucket-by-bucket (summing cumulative
    series is still cumulative), as do ``sum`` and ``count`` — every
    worker records into identically configured registries, so the bucket
    bounds line up by construction.
    """
    merged: dict[str, dict] = {}
    for histograms in histogram_maps:
        for base, hist in histograms.items():
            out = merged.setdefault(
                base, {"buckets": {}, "sum": 0.0, "count": 0.0}
            )
            for bound, count in hist["buckets"].items():
                out["buckets"][bound] = out["buckets"].get(bound, 0.0) + count
            out["sum"] += hist["sum"]
            out["count"] += hist["count"]
    return merged


def histogram_quantile(hist: dict, q: float) -> float:
    """Upper-bound estimate of the ``q`` quantile of one histogram.

    Walks the cumulative buckets to the first bound covering ``q`` of
    the observations — the standard text-format quantile read, accurate
    to one bucket width.  Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    total = hist.get("count", 0.0) or hist["buckets"].get(float("inf"), 0.0)
    if total <= 0:
        return 0.0
    target = q * total
    for bound in sorted(hist["buckets"]):
        if hist["buckets"][bound] >= target:
            return bound
    return float("inf")


def scrape_text(url: str, *, timeout: float = 5.0) -> str:
    """Fetch one ``/metrics`` page as text."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def scrape_totals(
    urls: list[str] | tuple[str, ...],
    *,
    timeout: float = 5.0,
    prefix: str = "",
) -> dict[str, float]:
    """Aggregate counters across many ``/metrics`` endpoints.

    Each endpoint's samples are summed into one ``{name: total}`` dict
    across all label combinations and all URLs — the semantics of
    :meth:`~repro.obs.registry.MetricsRegistry.total`, applied to
    workers that live in other processes.  Histogram ``_bucket`` series
    are skipped (cumulative buckets would double-count; the ``_sum`` /
    ``_count`` series carry the usable totals).  ``prefix`` restricts
    the result (e.g. ``"repro_"``).
    """
    totals: dict[str, float] = {}
    for url in urls:
        for name, _labels, value in parse_samples(
            scrape_text(url, timeout=timeout)
        ):
            if prefix and not name.startswith(prefix):
                continue
            if name.endswith("_bucket"):
                continue
            totals[name] = totals.get(name, 0.0) + value
    return totals
