"""repro.parallel — parallel experiment engine, shared-memory trace
transport, and the content-addressed ruleset cache.

Layering note: :mod:`repro.core.strategies` consults
:mod:`repro.parallel.cache` on its mining path, while
:mod:`repro.parallel.engine` sits *above* the experiment registry.  This
package init therefore resolves its exports lazily so importing the
low-level cache never drags the engine (and with it the whole experiment
layer) into the import graph.
"""

from __future__ import annotations

__all__ = [
    "AttachedTraceStore",
    "BlockShard",
    "CachingTraceProvider",
    "EngineRun",
    "ExperimentTask",
    "ParallelExperimentEngine",
    "RulesetCache",
    "SharedMemoryTraceProvider",
    "SharedTraceStore",
    "TaskOutcome",
    "TraceHandle",
    "cached_generate_ruleset",
    "configure_ruleset_cache",
    "disable_ruleset_cache",
    "evaluate_store",
    "evaluate_store_partitioned",
    "get_ruleset_cache",
    "plan_shards",
    "provide_pair_columns",
    "ruleset_cache",
    "run_experiments",
    "run_shard",
    "trace_key",
]

_CACHE_NAMES = {
    "RulesetCache",
    "cached_generate_ruleset",
    "configure_ruleset_cache",
    "disable_ruleset_cache",
    "get_ruleset_cache",
    "ruleset_cache",
}
_SHM_NAMES = {"AttachedTraceStore", "SharedTraceStore", "TraceHandle"}
_PROVIDER_NAMES = {
    "CachingTraceProvider",
    "SharedMemoryTraceProvider",
    "provide_pair_columns",
    "trace_key",
}
_ENGINE_NAMES = {
    "EngineRun",
    "ExperimentTask",
    "ParallelExperimentEngine",
    "TaskOutcome",
    "run_experiments",
}
_PARTITION_NAMES = {
    "BlockShard",
    "evaluate_store",
    "evaluate_store_partitioned",
    "plan_shards",
    "run_shard",
}


def __getattr__(name: str):
    if name in _CACHE_NAMES:
        from repro.parallel import cache as module
    elif name in _SHM_NAMES:
        from repro.parallel import shm as module
    elif name in _PROVIDER_NAMES:
        from repro.parallel import provider as module
    elif name in _ENGINE_NAMES:
        from repro.parallel import engine as module
    elif name in _PARTITION_NAMES:
        from repro.parallel import partition as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(module, name)


def __dir__():
    return sorted(__all__)
