"""Tests for repro.metrics.ascii_chart."""

import pytest

from repro.metrics.ascii_chart import line_chart, sparkline


class TestSparkline:
    def test_monotone_levels(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 3

    def test_clipping(self):
        line = sparkline([-1.0, 2.0])
        assert line == "▁█"

    def test_custom_range(self):
        line = sparkline([5.0], lo=0.0, hi=10.0)
        assert line in "▄▅"

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            sparkline([0.5], lo=1.0, hi=0.0)

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_dimensions(self):
        text = line_chart({"a": [0.0, 0.5, 1.0]}, height=5)
        lines = text.splitlines()
        assert len(lines) == 7  # 5 rows + axis + legend
        assert lines[0].startswith(" 1.00 |")
        assert lines[4].startswith(" 0.00 |")

    def test_markers_present(self):
        text = line_chart({"cov": [0.8] * 5, "succ": [0.2] * 5}, height=6)
        assert "*" in text and "o" in text
        assert "*=cov" in text and "o=succ" in text

    def test_high_values_on_top(self):
        text = line_chart({"a": [1.0]}, height=4)
        first_row = text.splitlines()[0]
        assert "*" in first_row

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({}, height=4)
        with pytest.raises(ValueError):
            line_chart({"a": [1.0]}, height=1)
        with pytest.raises(ValueError):
            line_chart({"a": []}, height=4)
        with pytest.raises(ValueError):
            line_chart({"a": [1.0]}, lo=1.0, hi=0.0)
