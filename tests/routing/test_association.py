"""Tests for repro.routing.association (the paper's policy, online)."""

import pytest

from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.association import AssociationRoutingPolicy, NeighborRuleTable

SMALL = OverlayConfig(
    n_nodes=80, degree=4, n_categories=6, files_per_category=40, library_size=25
)


class TestNeighborRuleTable:
    def test_threshold_gates_rules(self):
        table = NeighborRuleTable(window=100, min_support_count=3)
        for _ in range(2):
            table.observe(1, 10)
        assert table.consequents(1) == []
        table.observe(1, 10)
        assert table.consequents(1) == [10]

    def test_ordering_by_support(self):
        table = NeighborRuleTable(window=100, min_support_count=1)
        for _ in range(5):
            table.observe(1, 10)
        for _ in range(3):
            table.observe(1, 11)
        assert table.consequents(1) == [10, 11]
        assert table.consequents(1, k=1) == [10]

    def test_window_eviction(self):
        table = NeighborRuleTable(window=4, min_support_count=2)
        table.observe(1, 10)
        table.observe(1, 10)
        assert table.consequents(1) == [10]
        for _ in range(4):
            table.observe(2, 20)
        assert table.consequents(1) == []
        assert table.consequents(2) == [20]

    def test_rule_stats_support_and_confidence(self):
        table = NeighborRuleTable(window=100, min_support_count=1)
        for _ in range(3):
            table.observe(1, 10)
        table.observe(1, 11)
        support, confidence = table.rule_stats(1, 10)
        assert support == 3
        assert confidence == pytest.approx(3 / 4)
        assert table.rule_stats(1, 99) == (0, 0.0)
        assert table.rule_stats(99, 10) == (0, 0.0)

    def test_rule_stats_follow_window_eviction(self):
        table = NeighborRuleTable(window=2, min_support_count=1)
        table.observe(1, 10)
        table.observe(2, 20)
        table.observe(2, 21)  # (1, 10) ages out
        assert table.rule_stats(1, 10) == (0, 0.0)
        assert table.rule_stats(2, 20) == (1, pytest.approx(0.5))

    def test_n_rules(self):
        table = NeighborRuleTable(window=100, min_support_count=2)
        table.observe(1, 10)
        table.observe(1, 10)
        table.observe(2, 20)
        assert table.n_rules() == 1

    def test_clear(self):
        table = NeighborRuleTable(window=10, min_support_count=1)
        table.observe(1, 10)
        table.clear()
        assert table.consequents(1) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborRuleTable(window=0)
        with pytest.raises(ValueError):
            NeighborRuleTable(min_support_count=0)


def build(seed=1, **policy_kwargs):
    overlay = Overlay(SMALL, seed=seed)
    overlay.install_policies(
        lambda nid, ov: AssociationRoutingPolicy(nid, ov, **policy_kwargs)
    )
    return overlay


class TestAssociationRoutingPolicy:
    def test_uncovered_node_floods(self):
        overlay = build()
        policy = overlay.node(0).policy
        q = overlay.make_query(origin=0)
        assert policy.select(0, None, q) == overlay.topology.neighbors(0)

    def test_covered_node_forwards_to_consequents(self):
        overlay = build(min_support_count=2, top_k=2)
        policy = overlay.node(0).policy
        neighbor = overlay.topology.neighbors(0)[0]
        downstream = overlay.topology.neighbors(0)[1]
        for _ in range(3):
            policy.on_reply(
                node_id=0, upstream=neighbor, downstream=downstream,
                query=None, provider=99,
            )
        q = overlay.make_query(origin=5)
        assert policy.select(0, neighbor, q) == [downstream]

    def test_rule_consequent_equal_to_upstream_falls_back(self):
        overlay = build(min_support_count=1, top_k=1)
        policy = overlay.node(0).policy
        neighbor = overlay.topology.neighbors(0)[0]
        policy.on_reply(
            node_id=0, upstream=neighbor, downstream=neighbor, query=None, provider=9
        )
        q = overlay.make_query(origin=5)
        # The only consequent equals the upstream: flood instead.
        assert policy.select(0, neighbor, q) == overlay.topology.neighbors(0)

    def test_learning_reduces_traffic(self):
        overlay = build(seed=7, min_support_count=2, window=2048)
        cold = overlay.run_workload(100)
        warm = overlay.run_workload(100)  # tables now populated
        assert warm.messages_per_query < cold.messages_per_query

    def test_success_preserved_with_fallback(self):
        overlay = build(seed=8)
        stats = overlay.run_workload(150, warmup=300)
        # Flood fallback guarantees rule misses still resolve.
        assert stats.success_rate > 0.7

    def test_no_fallback_variant_cheaper_but_weaker(self):
        with_fb = build(seed=9, flood_fallback=True)
        s1 = with_fb.run_workload(120, warmup=300)
        without_fb = build(seed=9, flood_fallback=False)
        s2 = without_fb.run_workload(120, warmup=300)
        assert s2.messages_per_query <= s1.messages_per_query
        assert s2.success_rate <= s1.success_rate + 0.02

    def test_reset_clears_rules(self):
        overlay = build()
        policy = overlay.node(0).policy
        policy.on_reply(node_id=0, upstream=1, downstream=2, query=None, provider=3)
        policy.reset()
        assert policy.rules.consequents(1) == []

    def test_validation(self):
        overlay = Overlay(SMALL, seed=10)
        with pytest.raises(ValueError):
            AssociationRoutingPolicy(0, overlay, top_k=0)
