"""Tests for repro.trace.pairing."""

from repro.store.table import Table
from repro.trace.pairing import build_pair_table, pair_records
from repro.trace.records import QUERY_COLUMNS, REPLY_COLUMNS


def make_tables():
    queries = Table("queries", QUERY_COLUMNS)
    queries.extend(
        [
            (1.0, 100, 1, "q1"),
            (2.0, 200, 2, "q2"),
            (3.0, 300, 3, "q3"),  # no reply
        ]
    )
    replies = Table("replies", REPLY_COLUMNS)
    replies.extend(
        [
            (1.5, 100, 11, 1000, "f1.dat"),
            (2.5, 200, 12, 2000, "f2.dat"),
            (9.0, 999, 13, 3000, "orphan.dat"),  # no matching query
        ]
    )
    return queries, replies


class TestBuildPairTable:
    def test_pairs_only_for_matched_guids(self):
        queries, replies = make_tables()
        pairs = build_pair_table(queries, replies)
        assert len(pairs) == 2
        assert set(pairs.column("guid")) == {100, 200}

    def test_pair_schema(self):
        queries, replies = make_tables()
        pairs = build_pair_table(queries, replies)
        assert pairs.column_names == (
            "guid",
            "query_time",
            "source",
            "query_string",
            "reply_time",
            "replier",
            "host",
        )

    def test_pair_values(self):
        queries, replies = make_tables()
        pairs = build_pair_table(queries, replies)
        row = pairs.row_dict(0)
        assert row == {
            "guid": 100,
            "query_time": 1.0,
            "source": 1,
            "query_string": "q1",
            "reply_time": 1.5,
            "replier": 11,
            "host": 1000,
        }

    def test_empty_inputs(self):
        queries = Table("queries", QUERY_COLUMNS)
        replies = Table("replies", REPLY_COLUMNS)
        assert len(build_pair_table(queries, replies)) == 0


class TestPairRecords:
    def test_materialization(self):
        queries, replies = make_tables()
        records = pair_records(build_pair_table(queries, replies))
        assert len(records) == 2
        assert records[0].guid == 100
        assert records[0].replier == 11
        assert records[1].source == 2
