"""One cluster worker process: a LiveServent plus a control channel.

:func:`worker_main` is the ``multiprocessing`` (spawn) entry point the
:class:`~repro.scale.supervisor.ClusterSupervisor` launches one process
per node.  Inside, it is deliberately thin: build the
:class:`~repro.live.node.LiveServent` described by a picklable
:class:`WorkerSpec` (per-node durable state via :mod:`repro.persist`,
per-process :class:`~repro.obs.registry.MetricsRegistry` with its own
``/metrics`` endpoint, optional uvloop), report readiness over the
control pipe, then serve control commands until told to stop.  All
*data-plane* traffic — queries, hits, rule learning — flows over the
node's real TCP sockets; the pipe carries only control messages, so
killing the process models a crash faithfully (peers see a dead socket,
not a closed channel).

Control protocol (tuples over a ``multiprocessing.Pipe``):

=====================  ==============================================
parent → worker        worker → parent
=====================  ==============================================
``("peer", h, p, id)``  —  (dial and supervise a peer)
``("query", term)``     ``("query_issued", node, guid)``
``("stats",)``          ``("stats", node, payload)``
``("checkpoint",)``     ``("checkpoint", node, header | None)``
``("stop", ckpt)``      ``("stopped", node, final counters)``
—                       ``("ready", node, info)`` after start
—                       ``("failed", node, traceback)`` on a fatal error
=====================  ==============================================

A graceful ``("stop", True)`` closes the node with a final checkpoint
(the clean-shutdown semantics of :meth:`LiveServent.close`); ``("stop",
False)`` skips it — the soft crash used by fault drills.  A *hard* kill
(SIGKILL from the supervisor) never reaches this code at all, which is
the point: recovery must come from the WAL tail, exactly as in
:mod:`repro.faults` soaks.
"""

from __future__ import annotations

import asyncio
import os
import sys
import traceback
from dataclasses import dataclass, field

from repro.live.connection import ConnectionConfig

__all__ = ["WorkerSpec", "flight_path", "worker_main"]

#: how often the worker polls the control pipe; control-plane latency
#: only — the data plane never waits on this.
_CONTROL_POLL_SECONDS = 0.02


@dataclass(frozen=True)
class WorkerSpec:
    """Everything needed to build one node, picklable for spawn."""

    node_id: int
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (reported back in the ready message);
    #: restarts pin the previously resolved port so peers reconnect.
    port: int = 0
    rule_routed: bool = True
    top_k: int = 2
    max_ttl: int = 7
    #: terms this node shares one file apiece for.
    share_terms: tuple[str, ...] = ()
    #: StreamingRules overrides as (name, value) pairs (kept hashable).
    rule_kwargs: tuple[tuple[str, object], ...] = ()
    config: ConnectionConfig = field(default_factory=ConnectionConfig)
    state_dir: str | None = None
    checkpoint_interval: float = 30.0
    fsync: str = "interval"
    #: metrics endpoint port (0 = ephemeral, None = disabled).
    obs_port: int | None = 0
    uvloop: bool = False
    log_level: str = "warning"
    #: incarnation number; each restart mints GUIDs from a fresh epoch
    #: so peers' GUID-dedup tables don't eat the new life's queries.
    guid_epoch: int = 0
    #: GUID sampling for query tracing: 0 disables the tracer entirely,
    #: N traces the 1-in-N GUID subset (``traced_guid``) and serves the
    #: spans on the obs endpoint's ``/trace`` route.
    trace_sample: int = 0
    #: bound on distinct GUIDs the worker's tracer retains.
    trace_max: int = 512
    #: directory for the crash flight recorder (None = disabled); the
    #: worker dumps ``node-NNN.flight.jsonl`` there on SIGTERM, fatal
    #: errors, and periodically so SIGKILL postmortems have data.
    flight_dir: str | None = None
    flight_capacity: int = 256
    #: ring dumps to disk every N records (what a SIGKILL postmortem
    #: finds); tests lower it for determinism.
    flight_flush_every: int = 64


def flight_path(spec: WorkerSpec) -> str | None:
    """Where this worker dumps its flight recording (None = disabled)."""
    if spec.flight_dir is None:
        return None
    return os.path.join(
        spec.flight_dir, f"node-{spec.node_id:03d}.flight.jsonl"
    )


def _build_tracer(spec: WorkerSpec, recorder):
    """The worker's sampled tracer, teeing every span into the flight
    ring so a postmortem shows the routing decisions, not just control
    traffic."""
    if spec.trace_sample <= 0:
        return None
    from repro.obs.tracing import QueryTracer

    on_event = None
    if recorder is not None:

        def on_event(guid, event):
            doc = event.to_dict()
            doc.pop("ts", None)
            recorder.record(
                "trace", guid=guid, event=doc.pop("kind"), **doc
            )

    return QueryTracer(
        max_traces=spec.trace_max,
        sample=spec.trace_sample,
        on_event=on_event,
    )


def _build_node(spec: WorkerSpec, registry, tracer=None):
    from repro.live.node import LiveServent
    from repro.network.servent import SharedFile

    library = [
        SharedFile(index=i, name=f"{term} track{i}.mp3", size=1 << 20)
        for i, term in enumerate(spec.share_terms)
    ]
    rules = None
    if spec.rule_routed:
        from repro.core.streaming import StreamingRules

        rules = StreamingRules(
            **{
                "min_support_count": 2,
                "window_pairs": 512,
                **dict(spec.rule_kwargs),
            }
        )
    return LiveServent(
        spec.node_id,
        host=spec.host,
        port=spec.port,
        library=library,
        rule_routed=spec.rule_routed,
        rules=rules,
        top_k=spec.top_k,
        max_ttl=spec.max_ttl,
        config=spec.config,
        registry=registry,
        tracer=tracer,
        obs_port=spec.obs_port,
        state_dir=spec.state_dir,
        checkpoint_interval=spec.checkpoint_interval,
        fsync=spec.fsync,
    )


async def _serve(spec: WorkerSpec, conn, loop_impl: str, recorder=None) -> None:
    from repro.obs.registry import MetricsRegistry

    tracer = _build_tracer(spec, recorder)
    node = _build_node(spec, MetricsRegistry(), tracer)
    if spec.guid_epoch:
        node.servent.advance_guid_epoch(spec.guid_epoch)
    await node.start()
    conn.send(
        (
            "ready",
            spec.node_id,
            {
                "pid": os.getpid(),
                "port": node.port,
                "obs_port": node.obs_port,
                "loop": loop_impl,
                "recovery": (
                    node.recovery.as_dict()
                    if node.recovery is not None
                    else None
                ),
            },
        )
    )
    checkpoint = True
    try:
        while True:
            while not conn.poll():
                await asyncio.sleep(_CONTROL_POLL_SECONDS)
            try:
                message = conn.recv()
            except EOFError:
                return  # supervisor died; shut down gracefully below
            command = message[0]
            if command == "peer":
                _, host, port, peer_id = message
                if recorder is not None:
                    recorder.record("control", command="peer", peer=peer_id)
                node.add_peer(host, port, peer_id=peer_id)
            elif command == "query":
                guid = node.issue_query(message[1])
                if recorder is not None:
                    recorder.record(
                        "control", command="query", term=message[1], guid=guid
                    )
                conn.send(("query_issued", spec.node_id, guid))
            elif command == "stats":
                conn.send(
                    (
                        "stats",
                        spec.node_id,
                        {
                            "counters": node.snapshot(),
                            "pending_frames": node.pending_frames,
                            "connected_peers": sorted(node.connected_peers),
                            "hits": len(node.results),
                        },
                    )
                )
            elif command == "checkpoint":
                conn.send(("checkpoint", spec.node_id, node.checkpoint()))
            elif command == "stop":
                checkpoint = bool(message[1])
                if recorder is not None:
                    recorder.record(
                        "control", command="stop", checkpoint=checkpoint
                    )
                return
            else:
                conn.send(
                    ("failed", spec.node_id, f"unknown command {command!r}")
                )
    finally:
        await node.close(checkpoint=checkpoint)
        if recorder is not None:
            recorder.record("lifecycle", what="closed")
            recorder.dump(reason="stop")
        try:
            conn.send(("stopped", spec.node_id, node.snapshot()))
        except (OSError, BrokenPipeError):
            pass


def worker_main(spec: WorkerSpec, conn) -> None:
    """Process entry point: run one node until stopped or killed."""
    import signal

    from repro.obs.logging import configure_logging
    from repro.scale.loop import install_uvloop

    configure_logging(level=spec.log_level)
    loop_impl = install_uvloop(spec.uvloop)
    recorder = None
    if spec.flight_dir is not None:
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(
            flight_path(spec),
            capacity=spec.flight_capacity,
            flush_every=spec.flight_flush_every,
        )
        recorder.record(
            "lifecycle",
            what="start",
            node=spec.node_id,
            pid=os.getpid(),
            epoch=spec.guid_epoch,
        )

        def _on_sigterm(signum, frame):
            # Dump the final moments, then die with the conventional
            # 128+SIGTERM status; SystemExit unwinds asyncio.run.
            recorder.record("lifecycle", what="sigterm")
            recorder.dump(reason="sigterm")
            sys.exit(143)

        signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        asyncio.run(_serve(spec, conn, loop_impl, recorder))
    except Exception:
        if recorder is not None:
            recorder.record(
                "lifecycle", what="fatal", traceback=traceback.format_exc()
            )
            recorder.dump(reason="fatal")
        try:
            conn.send(("failed", spec.node_id, traceback.format_exc()))
        except (OSError, BrokenPipeError):
            pass
        sys.exit(1)
    finally:
        conn.close()
