"""FaultyReader/FaultyWriter/FaultController behaviour over real sockets."""

import asyncio
import time

import pytest

from repro.faults.plan import CRASH, FaultEvent
from repro.faults.transport import FaultController, FaultyLink, LinkFaults
from repro.live.framing import StreamDecoder
from repro.network.protocol import ProtocolError


def run(coro, timeout=20.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def wrapped_pair(faults: LinkFaults):
    """One loopback connection with the client side fault-wrapped.

    Returns (server, link, server_streams) — callers close all three.
    """
    accepted = {}
    ready = asyncio.Event()

    async def on_accept(reader, writer):
        accepted["reader"], accepted["writer"] = reader, writer
        ready.set()

    server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    link = FaultyLink(reader, writer, faults)
    await ready.wait()
    return server, link, accepted


async def teardown(server, link, accepted):
    for writer in (accepted.get("writer"),):
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
    try:
        link.writer.close()
        await link._inner_writer.wait_closed()
    except Exception:
        pass
    server.close()
    await server.wait_closed()


class TestLinkFaults:
    def test_latency_delays_reads(self):
        async def body():
            faults = LinkFaults()
            server, link, accepted = await wrapped_pair(faults)
            faults.set_latency(0.15)
            accepted["writer"].write(b"hi")
            await accepted["writer"].drain()
            t0 = time.perf_counter()
            assert await link.reader.readexactly(2) == b"hi"
            assert time.perf_counter() - t0 >= 0.14
            await teardown(server, link, accepted)

        run(body())

    def test_stall_is_one_shot(self):
        async def body():
            faults = LinkFaults()
            server, link, accepted = await wrapped_pair(faults)
            faults.stall(0.2)
            accepted["writer"].write(b"ab")
            await accepted["writer"].drain()
            t0 = time.perf_counter()
            await link.reader.readexactly(1)
            assert time.perf_counter() - t0 >= 0.19
            t0 = time.perf_counter()
            await link.reader.readexactly(1)
            assert time.perf_counter() - t0 < 0.1
            await teardown(server, link, accepted)

        run(body())

    def test_reset_kills_both_directions(self):
        async def body():
            faults = LinkFaults()
            server, link, accepted = await wrapped_pair(faults)
            assert faults.reset() is True
            with pytest.raises(ConnectionResetError):
                await link.reader.read(10)
            with pytest.raises(ConnectionResetError):
                link.writer.write(b"x")
            # the wrapper detached itself: nothing left to reset
            assert faults.reset() is False
            await teardown(server, link, accepted)

        run(body())

    def test_corrupt_injects_undecodable_bytes(self):
        async def body():
            faults = LinkFaults()
            server, link, accepted = await wrapped_pair(faults)
            assert faults.corrupt() is True
            garbage = await accepted["reader"].readexactly(23)
            assert garbage == b"\xff" * 23
            with pytest.raises(ProtocolError):
                StreamDecoder().feed(garbage)
            await teardown(server, link, accepted)

        run(body())

    def test_truncate_halves_next_frame_then_aborts(self):
        async def body():
            faults = LinkFaults()
            server, link, accepted = await wrapped_pair(faults)
            assert faults.truncate() is True
            frame = bytes(range(256)) * 2  # any 512-byte "frame" will do
            link.writer.write(frame)
            received = await accepted["reader"].read(-1)  # until EOF/abort
            assert 0 < len(received) < len(frame)
            await teardown(server, link, accepted)

        run(body())


class TestFaultController:
    def test_partition_refuses_cross_dials(self):
        async def body():
            async def on_accept(reader, writer):
                writer.close()

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            controller = FaultController()
            controller.bind_ports({0: port, 1: 60001})
            controller.set_partition([0], [1])
            with pytest.raises(ConnectionRefusedError):
                await controller.opener(1)("127.0.0.1", port)
            # same-group dials still connect, wrapped
            reader, writer = await controller.opener(0)("127.0.0.1", port)
            assert hasattr(writer, "_link")
            writer.close()
            controller.heal_partition()
            reader, writer = await controller.opener(1)("127.0.0.1", port)
            writer.close()
            await asyncio.sleep(0.01)
            server.close()
            await server.wait_closed()

        run(body())

    def test_unknown_ports_pass_through_unwrapped(self):
        async def body():
            async def on_accept(reader, writer):
                writer.close()

            server = await asyncio.start_server(on_accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            controller = FaultController()  # knows no ports at all
            reader, writer = await controller.opener(0)("127.0.0.1", port)
            assert isinstance(reader, asyncio.StreamReader)
            assert not hasattr(writer, "_link")
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()

        run(body())

    def test_link_state_is_shared_per_edge(self):
        controller = FaultController()
        assert controller.link(1, 2) is controller.link(2, 1)
        assert controller.link(1, 2) is not controller.link(1, 3)

    def test_node_level_events_are_rejected(self):
        controller = FaultController()
        with pytest.raises(ValueError):
            controller.apply(FaultEvent(time=0.0, kind=CRASH, node=1))
