"""Versioned, fingerprinted snapshots of streaming-rule count state.

A snapshot freezes one :meth:`StreamingRules.make_counts` object — the
exact sliding window (:class:`_ExactWindowCounts`) or the lossy sketch
(:class:`_LossyCounts`) — so a restarted servent resumes from learned
state instead of re-flooding while the window refills.

Layout::

    snapshot := magic(8) u32 header_len u32 crc32(header) header payload
    magic    := b"RPSN" u16 version u16 reserved
    header   := JSON (backend + parameters + payload_len +
                payload_blake2b + state fingerprint + caller metadata)
    payload  := exact:  i64 source, i64 replier   per window entry
                lossy:  i64 source, i64 replier, i64 count, i64 delta
                        per sketch entry, sorted

Two integrity layers: the CRC-32 guards the header against torn
writes, the blake2b-128 digest guards the payload against corruption.
A snapshot that fails either check is *invalid*, never half-loaded —
recovery skips it and falls back to an older one.

:func:`fingerprint_counts` hashes the canonical state (parameters +
payload, caches excluded), so two count objects with identical learned
state — e.g. the original and its crash-recovered twin — produce the
same hex digest.  That equality is the warm-recovery acceptance check
in the fault soak and the persistence tests.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib

from repro.core.streaming import _ExactWindowCounts, _LossyCounts

__all__ = [
    "SNAPSHOT_MAGIC",
    "SnapshotError",
    "fingerprint_counts",
    "load_snapshot",
    "read_snapshot_header",
    "write_snapshot",
]

SNAPSHOT_VERSION = 1
SNAPSHOT_MAGIC = b"RPSN" + struct.pack("<HH", SNAPSHOT_VERSION, 0)

_PAIR = struct.Struct("<qq")
_ENTRY = struct.Struct("<qqqq")


class SnapshotError(Exception):
    """A snapshot file that cannot be trusted (torn, corrupt, unknown)."""


def _encode_state(state: dict) -> tuple[dict, bytes]:
    """Split a counts ``state()`` dict into (scalar params, packed payload)."""
    if state["backend"] == "exact":
        params = {
            "backend": "exact",
            "window_pairs": state["window_pairs"],
            "threshold": state["threshold"],
        }
        payload = b"".join(_PAIR.pack(s, r) for s, r in state["window"])
    elif state["backend"] == "lossy":
        params = {
            "backend": "lossy",
            "epsilon": state["epsilon"],
            "threshold": state["threshold"],
            "n_seen": state["n_seen"],
            "current_bucket": state["current_bucket"],
            "since_refresh": state["since_refresh"],
        }
        payload = b"".join(_ENTRY.pack(*entry) for entry in state["entries"])
    else:  # pragma: no cover - state() only emits the two backends
        raise SnapshotError(f"unknown backend {state['backend']!r}")
    return params, payload


def _decode_state(params: dict, payload: bytes) -> dict:
    state = dict(params)
    if params["backend"] == "exact":
        state["window"] = [
            _PAIR.unpack_from(payload, off)
            for off in range(0, len(payload), _PAIR.size)
        ]
    else:
        state["entries"] = [
            _ENTRY.unpack_from(payload, off)
            for off in range(0, len(payload), _ENTRY.size)
        ]
    return state


def fingerprint_counts(counts) -> str:
    """blake2b-128 hex digest of the canonical learned state."""
    params, payload = _encode_state(counts.state())
    digest = hashlib.blake2b(digest_size=16)
    digest.update(json.dumps(params, sort_keys=True).encode())
    digest.update(payload)
    return digest.hexdigest()


def write_snapshot(path: str, counts, *, meta: dict | None = None) -> dict:
    """Atomically write ``counts`` to ``path``; returns the header.

    The snapshot lands via write-to-temp + fsync + rename, so ``path``
    either holds the complete old snapshot or the complete new one —
    never a torn hybrid — whatever instant a crash hits.
    """
    params, payload = _encode_state(counts.state())
    header = {
        "version": SNAPSHOT_VERSION,
        **params,
        "n_rules": counts.n_rules(),
        "payload_len": len(payload),
        "payload_blake2b": hashlib.blake2b(payload, digest_size=16).hexdigest(),
        "fingerprint": fingerprint_counts(counts),
        **(meta or {}),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode()
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(SNAPSHOT_MAGIC)
        fh.write(struct.pack("<II", len(header_bytes), zlib.crc32(header_bytes)))
        fh.write(header_bytes)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return header


def _read(path: str) -> tuple[dict, bytes]:
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < len(SNAPSHOT_MAGIC) + 8:
        raise SnapshotError(f"{path}: truncated snapshot")
    if data[:4] != SNAPSHOT_MAGIC[:4]:
        raise SnapshotError(f"{path}: not a snapshot (bad magic)")
    (version, _reserved) = struct.unpack("<HH", data[4:8])
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(f"{path}: unsupported snapshot version {version}")
    header_len, header_crc = struct.unpack("<II", data[8:16])
    header_end = 16 + header_len
    if header_end > len(data):
        raise SnapshotError(f"{path}: truncated snapshot header")
    header_bytes = data[16:header_end]
    if zlib.crc32(header_bytes) != header_crc:
        raise SnapshotError(f"{path}: snapshot header checksum mismatch")
    header = json.loads(header_bytes)
    payload = data[header_end:]
    if len(payload) != header["payload_len"]:
        raise SnapshotError(
            f"{path}: payload is {len(payload)} bytes, "
            f"header promises {header['payload_len']}"
        )
    digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
    if digest != header["payload_blake2b"]:
        raise SnapshotError(f"{path}: snapshot payload digest mismatch")
    return header, payload


def read_snapshot_header(path: str) -> dict:
    """The validated header alone (for ``repro persist inspect``)."""
    header, _payload = _read(path)
    return header


def load_snapshot(path: str):
    """Reconstruct the counts object; returns ``(counts, header)``.

    Raises :class:`SnapshotError` on any integrity failure — a caller
    holding several generations retries the next-older file.
    """
    header, payload = _read(path)
    state = _decode_state(header, payload)
    if header["backend"] == "exact":
        counts = _ExactWindowCounts.from_state(state)
    else:
        counts = _LossyCounts.from_state(state)
    return counts, header
