"""Bench `category-rules`: §VI — query-string dimension in antecedents.

Paper: "Adding dimensions such as the query strings during rule
generation ... could also aid in increasing the quality of the rule
sets."  At top-1 forwarding, (host, category) rules recover the success
that host-only rules sacrifice on a neighbor's minority interests.
"""

from benchmarks.conftest import run_and_report


def test_category_rules(benchmark):
    result = run_and_report(benchmark, "category-rules")
    gain = next(
        row for row in result.rows if row.label.startswith("success gain")
    )
    assert gain.measured > 0.02
