"""Dependency-free metrics primitives with Prometheus text exposition.

The paper's adaptive strategies work because a node *measures itself* —
coverage (α) and success (ρ) drive every regeneration decision — so the
live daemon needs first-class metrics, not ad-hoc counters.  This module
provides the three Prometheus instrument kinds the stack uses:

* :class:`Counter` — monotonically increasing totals (frames, bytes,
  routing decisions);
* :class:`Gauge` — point-in-time values (send-queue depth, α, ρ, active
  rule count, current backoff delay);
* :class:`Histogram` — fixed-bucket distributions (decode latency, rule
  regeneration duration, per-block mining time).

Instruments are created through a :class:`MetricsRegistry` as labeled
*families* (``registry.counter("repro_frames_total", ..., ("node",
"direction"))``); ``family.labels(node="3", direction="in")`` returns the
child instrument for one label combination, cached so hot paths hold a
direct reference and pay only an attribute call per event.

:meth:`MetricsRegistry.render` emits the Prometheus text format
(``text/plain; version=0.0.4``) that real scrapers ingest, and
:class:`NullRegistry` is the disabled twin: every family it returns
no-ops, so instrumented code runs unconditionally with near-zero cost
(verified by the no-op gate in the test suite and the wire-level bench).

A process-wide :data:`GLOBAL_REGISTRY` collects the offline simulator's
per-block timings; :func:`get_global_registry` /
:func:`reset_global_registry` manage it (tests reset between runs).
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GLOBAL_REGISTRY",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_global_registry",
    "reset_global_registry",
]

#: Prometheus' default duration buckets, extended downwards — frame
#: decodes complete in microseconds, not milliseconds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6,
    5e-6,
    2.5e-5,
    1e-4,
    5e-4,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_VALID_KINDS = ("counter", "gauge", "histogram")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing value for one label combination."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the running total (for scrape-time syncs that mirror
        an externally maintained counter such as :class:`NodeStats`)."""
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value for one label combination."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float] | None) -> None:
        """Compute the value at scrape time instead of storing it."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Fixed cumulative buckets + sum + count for one label combination."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # final slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) per bucket, ending at +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out


class _Family:
    """One named metric with a fixed label schema and cached children."""

    __slots__ = ("name", "help", "kind", "labelnames", "_children", "_buckets")

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], object] = {}
        self._buckets = tuple(buckets) if buckets is not None else None

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets or DEFAULT_BUCKETS)

    def labels(self, *labelvalues, **labelkw):
        """The child instrument for one label-value combination."""
        if labelkw:
            if labelvalues:
                raise ValueError("pass label values positionally or by name")
            try:
                labelvalues = tuple(labelkw[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name} expects labels {self.labelnames}"
                ) from exc
        key = tuple(str(v) for v in labelvalues)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label values, "
                f"got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def children(self) -> dict[tuple[str, ...], object]:
        """Label values -> child instrument (reporting/testing access)."""
        return dict(self._children)

    def samples(self) -> Iterable[tuple[str, tuple[str, ...], float]]:
        """(suffix, labelvalues(+le), value) triples for exposition."""
        for key, child in sorted(self._children.items()):
            if self.kind == "histogram":
                for bound, cum in child.cumulative():
                    yield "_bucket", key + (_format_value(bound),), float(cum)
                yield "_sum", key, child.sum
                yield "_count", key, float(child.count)
            else:
                yield "", key, child.value


class MetricsRegistry:
    """Create, look up and expose metric families."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """True for real registries; the null registry reports False so
        hot paths can skip work (e.g. clock reads) that only exists to
        feed instruments."""
        return True

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> _Family:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, kind, labelnames, buckets)
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.labelnames}"
            )
        return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] | None = None,
    ) -> _Family:
        return self._family(name, help_text, "histogram", labelnames, buckets)

    def family(self, name: str) -> _Family | None:
        """The registered family called ``name``, if any."""
        return self._families.get(name)

    def total(self, name: str) -> float:
        """Sum of a family's children across every label combination.

        Counters and gauges sum their values; histograms sum their
        observation counts.  Unregistered names total 0.0 — callers
        checking invariants ("registry agrees with NodeStats") can probe
        without guarding registration order.
        """
        family = self._families.get(name)
        if family is None:
            return 0.0
        children = family.children().values()
        if family.kind == "histogram":
            return float(sum(child.count for child in children))
        return float(sum(child.value for child in children))

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            labelnames = family.labelnames
            for suffix, labelvalues, value in family.samples():
                if suffix == "_bucket":
                    names = labelnames + ("le",)
                else:
                    names = labelnames
                lines.append(
                    f"{name}{suffix}"
                    f"{_labels_suffix(names, labelvalues)}"
                    f" {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


class _NullInstrument:
    """One object answering for every disabled counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class _NullFamily:
    __slots__ = ()

    def labels(self, *labelvalues, **labelkw):
        return _NULL_INSTRUMENT

    def samples(self):
        return ()


_NULL_FAMILY = _NullFamily()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing — observability off.

    Instrumented code paths call it unconditionally; each call costs one
    no-op method dispatch, which the wire-level benchmark gate bounds.
    """

    def __init__(self) -> None:  # no state, no lock
        pass

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name, help_text, labelnames=()):
        return _NULL_FAMILY

    def gauge(self, name, help_text, labelnames=()):
        return _NULL_FAMILY

    def histogram(self, name, help_text, labelnames=(), *, buckets=None):
        return _NULL_FAMILY

    def family(self, name):
        return None

    def total(self, name: str) -> float:
        return 0.0

    def render(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()

#: Process-wide registry for ambient instrumentation (the offline
#: simulator's per-block timings land here).
GLOBAL_REGISTRY = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    return GLOBAL_REGISTRY


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (tests; long-lived CLI sessions)."""
    global GLOBAL_REGISTRY
    GLOBAL_REGISTRY = MetricsRegistry()
    return GLOBAL_REGISTRY
