"""ClusterSupervisor: spawn/ready/wire/query/stop/kill/restart, for real.

Every test here boots actual worker *processes* (multiprocessing spawn)
talking real TCP, so they all carry the ``live`` marker and their own
deadlines: a supervision bug must fail the test, not hang the suite.
"""

import time
from dataclasses import replace

import pytest

from repro.network.topology import Topology
from repro.scale.supervisor import ClusterSupervisor, partitioned_specs

VOCAB = ["alpha", "bravo", "charlie", "delta"]


def wait_until(predicate, *, timeout=20.0, interval=0.1, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail(f"timed out waiting for {message}")


def two_worker_supervisor(tmp_path=None, **kwargs):
    specs = partitioned_specs(2, VOCAB)
    if tmp_path is not None:
        specs = [
            replace(s, state_dir=str(tmp_path / f"node-{s.node_id:03d}"))
            for s in specs
        ]
    return ClusterSupervisor(
        specs, topology=Topology(2, [(0, 1)]), **kwargs
    )


@pytest.mark.live
class TestRoundTrip:
    def test_spawn_ready_query_stop(self, tmp_path):
        with two_worker_supervisor(tmp_path) as sup:
            # readiness: both workers reported distinct pids and ports.
            infos = {h.node_id: h.info for h in sup.handles.values()}
            assert set(infos) == {0, 1}
            assert infos[0]["pid"] != infos[1]["pid"]
            ports = {node_id: info["port"] for node_id, info in infos.items()}
            assert all(ports.values())
            assert infos[0]["loop"] in ("asyncio", "uvloop")
            # a fresh state dir recovers to a cold (but present) record.
            assert infos[0]["recovery"] is not None

            # the ring edge connects across processes.
            wait_until(
                lambda: all(
                    payload["connected_peers"]
                    for payload in sup.stats().values()
                ),
                message="peers to connect",
            )

            # "bravo" lives on node 1 (round-robin partition); a query
            # issued at node 0 must cross the process boundary and the
            # hit must route back.
            guid = sup.issue_query(0, "bravo")
            assert guid > 0
            wait_until(
                lambda: sup.stats()[0]["counters"]["hits_received"] >= 1,
                message="a cross-process QueryHit",
            )

            totals = sup.totals()
            assert totals["queries_issued"] >= 1
            assert totals["hits_received"] >= 1

            # graceful stop retires the node's exact final counters.
            final = sup.stop(0)
            assert final is not None
            assert final["queries_issued"] >= 1
            assert not sup.handles[0].alive
            # ...and grand totals still include the retired incarnation.
            assert sup.grand_totals()["queries_issued"] >= 1

    def test_scrape_totals_match_control_channel(self, tmp_path):
        with two_worker_supervisor() as sup:
            wait_until(
                lambda: all(
                    payload["connected_peers"]
                    for payload in sup.stats().values()
                ),
                message="peers to connect",
            )
            sup.issue_query(0, "bravo")
            wait_until(
                lambda: sup.stats()[0]["counters"]["hits_received"] >= 1,
                message="a cross-process QueryHit",
            )
            scraped = sup.scrape_totals()
            control = sup.totals()
            assert scraped["repro_queries_issued_total"] == pytest.approx(
                control["queries_issued"]
            )
            assert scraped["repro_hits_received_total"] == pytest.approx(
                control["hits_received"]
            )


@pytest.mark.live
class TestKillAndRestart:
    def test_hard_kill_then_pinned_port_restart(self, tmp_path):
        sup = two_worker_supervisor(tmp_path)
        try:
            sup.start()
            wait_until(
                lambda: all(
                    payload["connected_peers"]
                    for payload in sup.stats().values()
                ),
                message="peers to connect",
            )
            # learn something worth recovering: pairs only promote at
            # min_support_count=2, but the WAL records every pair.
            for _ in range(3):
                sup.issue_query(0, "bravo")
            wait_until(
                lambda: sup.stats()[0]["counters"]["hits_received"] >= 3,
                message="warmup hits",
            )
            old_port = sup.handles[0].port

            sup.kill(0)
            assert not sup.handles[0].alive
            # SIGKILL means no retirement snapshot — like a real crash.
            assert sup.handles[0].retired == []

            info = sup.restart(0)
            assert info["port"] == old_port
            assert sup.handles[0].restarts == 1
            # warm recovery ran against the state dir the first
            # incarnation wrote (what it finds there depends on what
            # survived the SIGKILL — the recovery *record* must exist).
            assert info["recovery"] is not None
            assert "restored" in info["recovery"]
            # the overlay heals: the surviving peer re-dials the pinned
            # port, and queries flow again.
            wait_until(
                lambda: all(
                    payload["connected_peers"]
                    for payload in sup.stats().values()
                ),
                message="reconnect after restart",
            )
            sup.issue_query(0, "delta")
            wait_until(
                lambda: sup.stats()[0]["counters"]["hits_received"] >= 1,
                message="a hit after restart",
            )
        finally:
            sup.close()

    def test_crash_monitor_restarts_on_crash_policy(self, tmp_path):
        sup = two_worker_supervisor(
            tmp_path, restart="on-crash", monitor_interval=0.05
        )
        try:
            sup.start()
            victim = sup.handles[1]
            pid_before = victim.info["pid"]
            # a crash the supervisor did NOT ask for.
            victim.process.kill()
            wait_until(
                lambda: victim.alive and victim.info.get("pid") != pid_before,
                message="automatic restart after crash",
            )
            assert victim.restarts == 1
            assert sup.crashes and sup.crashes[0][0] == 1
        finally:
            sup.close()

    def test_duplicate_node_ids_rejected(self):
        specs = partitioned_specs(2, VOCAB)
        with pytest.raises(ValueError):
            ClusterSupervisor([specs[0], specs[0]])
