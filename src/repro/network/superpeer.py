"""Super-peer network baseline (Yang & Garcia-Molina, the paper's ref [14]).

§II: leaves attach to a super-peer that indexes their content; a query
goes to the leaf's super-peer (1 message), is answered from the local
index if possible, and is otherwise flooded among the super-peers — which
"can still suffer from the effects of flooding on larger systems", the
effect this baseline exists to show.

This is a self-contained two-tier simulator (the flat overlay machinery
does not fit a tiered design): super-peers form their own random-regular
overlay; each leaf binds to one super-peer; indices are exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.metrics.traffic import QueryOutcome, TrafficStats
from repro.network.topology import random_regular
from repro.utils.rng import as_generator, spawn_child
from repro.workload.content import ContentCatalog
from repro.workload.interests import InterestModel

__all__ = ["SuperPeerConfig", "SuperPeerNetwork"]


@dataclass(frozen=True)
class SuperPeerConfig:
    """Parameters of the two-tier network."""

    n_superpeers: int = 30
    leaves_per_superpeer: int = 20
    superpeer_degree: int = 4
    n_categories: int = 40
    files_per_category: int = 250
    library_size: int = 60
    interests_per_peer: int = 4
    #: TTL of the superpeer-tier flood.
    superpeer_ttl: int = 4

    def __post_init__(self) -> None:
        if self.n_superpeers < 3:
            raise ValueError("n_superpeers must be >= 3")
        if self.leaves_per_superpeer < 1:
            raise ValueError("leaves_per_superpeer must be >= 1")
        if not 2 <= self.superpeer_degree < self.n_superpeers:
            raise ValueError("superpeer_degree out of range")
        if self.superpeer_ttl < 1:
            raise ValueError("superpeer_ttl must be >= 1")

    @property
    def n_leaves(self) -> int:
        return self.n_superpeers * self.leaves_per_superpeer


class SuperPeerNetwork:
    """Two-tier overlay: exact leaf indices at super-peers, tier-2 flooding."""

    def __init__(self, config: SuperPeerConfig | None = None, *, seed=None) -> None:
        self.config = config or SuperPeerConfig()
        cfg = self.config
        self._rng = as_generator(seed)
        self.topology = random_regular(
            cfg.n_superpeers, cfg.superpeer_degree, rng=spawn_child(self._rng)
        )
        self.catalog = ContentCatalog(cfg.n_categories, cfg.files_per_category)
        interests = InterestModel(cfg.n_categories)
        # leaf id -> (superpeer, profile, library)
        self._leaf_superpeer: list[int] = []
        self._leaf_profile = []
        self._leaf_library: list[frozenset[int]] = []
        # superpeer id -> file id -> list of leaf ids (the index).
        self._index: list[dict[int, list[int]]] = [
            {} for _ in range(cfg.n_superpeers)
        ]
        for leaf in range(cfg.n_leaves):
            superpeer = leaf // cfg.leaves_per_superpeer
            profile = interests.sample_profile(
                self._rng, width=cfg.interests_per_peer
            )
            library = self.catalog.sample_library(
                self._rng, profile, size=cfg.library_size
            )
            self._leaf_superpeer.append(superpeer)
            self._leaf_profile.append(profile)
            self._leaf_library.append(library)
            index = self._index[superpeer]
            for file_id in library:
                index.setdefault(file_id, []).append(leaf)
        self._next_guid = 0

    # ------------------------------------------------------------------
    def query(self, leaf: int, file_id: int) -> QueryOutcome:
        """One leaf query through the two-tier protocol."""
        cfg = self.config
        self._next_guid += 1
        if file_id in self._leaf_library[leaf]:
            return QueryOutcome(self._next_guid, 0, 1, 0, 0)
        home = self._leaf_superpeer[leaf]
        messages = 1  # leaf -> home super-peer
        local = self._index[home].get(file_id, ())
        if local:
            return QueryOutcome(self._next_guid, messages, len(local), 1, 0)
        # Tier-2 flood among super-peers.
        parent: dict[int, int | None] = {home: None}
        depth = {home: 0}
        hits = 0
        first_hit_hops = None
        duplicates = 0
        frontier = deque([home])
        while frontier:
            sp = frontier.popleft()
            if depth[sp] >= cfg.superpeer_ttl:
                continue
            for neighbor in self.topology.neighbors(sp):
                if neighbor == parent[sp]:
                    continue
                messages += 1
                if neighbor in parent:
                    duplicates += 1
                    continue
                parent[neighbor] = sp
                depth[neighbor] = depth[sp] + 1
                matches = self._index[neighbor].get(file_id, ())
                if matches:
                    hits += len(matches)
                    if first_hit_hops is None:
                        # +1 for the original leaf -> super-peer hop.
                        first_hit_hops = depth[neighbor] + 1
                frontier.append(neighbor)
        return QueryOutcome(
            self._next_guid, messages, hits, first_hit_hops, duplicates
        )

    def run_workload(self, n_queries: int, *, warmup: int = 0) -> TrafficStats:
        """Issue interest-driven queries from random leaves.

        The first ``warmup`` queries run but are not recorded.  Flooding
        has nothing to warm up, but learning tiers do — accepting the
        parameter here keeps the rng draw sequence identical across
        arms, so this baseline's TrafficStats are directly comparable
        to :class:`~repro.network.hier.HierNetwork` at equal seeds
        (same α/ρ accounting: nothing is rule-covered, so α is 0 by
        construction).
        """
        if n_queries < 0:
            raise ValueError("n_queries must be non-negative")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        cfg = self.config
        stats = TrafficStats()
        from repro.workload.zipf import ZipfSampler

        rank_sampler = ZipfSampler(cfg.files_per_category, 1.0)
        for i in range(warmup + n_queries):
            leaf = int(self._rng.integers(0, cfg.n_leaves))
            category = self._leaf_profile[leaf].sample_category(self._rng)
            rank = rank_sampler.sample(self._rng)
            file_id = category * cfg.files_per_category + rank
            outcome = self.query(leaf, file_id)
            if i >= warmup:
                stats.record(outcome)
        return stats

    # -- introspection (tests) -------------------------------------------
    def superpeer_of(self, leaf: int) -> int:
        return self._leaf_superpeer[leaf]

    def index_size(self, superpeer: int) -> int:
        return sum(len(v) for v in self._index[superpeer].values())
