"""Optional uvloop acceleration for the live stack.

uvloop is a drop-in libuv-backed event loop that roughly doubles asyncio
socket throughput — exactly the hot path a saturation benchmark
measures — but the repo takes no new hard dependencies, so it is used
*only when already importable*: :func:`install_uvloop` installs the
policy and reports which implementation actually runs, and every
consumer (``live-node --uvloop``, the cluster workers, the load
generator) records that string in its output so a benchmark result is
never ambiguous about the loop it ran on.
"""

from __future__ import annotations

import asyncio

__all__ = ["install_uvloop", "loop_implementation"]


def install_uvloop(enabled: bool) -> str:
    """Install the uvloop event-loop policy when asked *and* available.

    Returns the name of the implementation that will actually serve new
    event loops: ``"uvloop"`` on success, ``"asyncio"`` otherwise (not
    requested, or uvloop missing — the silent-fallback contract, so the
    same command line works on hosts with and without it).
    """
    if not enabled:
        return "asyncio"
    try:
        import uvloop
    except ImportError:
        return "asyncio"
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return "uvloop"


def loop_implementation() -> str:
    """The implementation new event loops will use under the current
    policy (``"uvloop"`` or ``"asyncio"``)."""
    policy = asyncio.get_event_loop_policy()
    return (
        "uvloop" if type(policy).__module__.startswith("uvloop") else "asyncio"
    )
