"""Keyword search semantics over the content catalog.

§II of the paper contrasts unstructured networks with structured P2P:
"queries must match the content exactly, so wild card searches or
searches which contain a permutation of the words will not find the
corresponding content" in DHTs.  Unstructured search matches *keywords*:
a node answers a query whose terms are all present in one of its file
names.  This module adds that semantics on top of
:class:`~repro.workload.content.ContentCatalog`:

* every file has a deterministic token set (its category's topic terms
  plus file-specific terms);
* a user query is a *subset* of some target file's tokens, possibly
  reordered (the permutation case) or dropping terms (the wildcard-ish
  case);
* :meth:`KeywordIndex.match` implements the standard conjunctive
  containment test, and :meth:`KeywordIndex.search_library` finds every
  matching file in a peer's library.

Exact-id matching (used by the routing experiments, where identifying
*which* file is wanted is all that matters) and keyword matching agree
whenever the query keeps all of the target's tokens; keyword matching is
strictly more permissive otherwise — property-tested in the suite.
"""

from __future__ import annotations

from typing import Iterable

from repro.utils.rng import as_generator
from repro.workload.content import ContentCatalog

__all__ = ["KeywordIndex"]

# Word pools for synthesizing token sets; deterministic per file id.
_TOPIC_WORDS = (
    "alpha", "bravo", "cedar", "delta", "ember", "flint", "gale", "harbor",
    "iris", "jasper", "koral", "lumen", "mesa", "noble", "onyx", "pine",
    "quartz", "ridge", "sable", "tundra", "umber", "velvet", "willow",
    "xenon", "yarrow", "zephyr",
)
_DETAIL_WORDS = (
    "live", "remix", "studio", "acoustic", "extended", "classic", "vol",
    "deluxe", "edit", "session", "original", "remaster",
)


class KeywordIndex:
    """Token sets and conjunctive keyword matching for a catalog."""

    def __init__(self, catalog: ContentCatalog) -> None:
        self.catalog = catalog

    # -- token synthesis ---------------------------------------------------
    def file_tokens(self, file_id: int) -> frozenset[str]:
        """Deterministic token set for a file.

        Two topic words shared by every file of the category, one
        file-specific detail word, and the file's own rank token — enough
        structure for partial queries to be ambiguous within a category
        but unambiguous across categories.
        """
        category = self.catalog.category_of(file_id)
        rank = file_id % self.catalog.files_per_category
        w = _TOPIC_WORDS
        topic_a = w[category % len(w)]
        topic_b = w[(category * 7 + 3) % len(w)]
        detail = _DETAIL_WORDS[(file_id * 13 + 5) % len(_DETAIL_WORDS)]
        return frozenset({topic_a, topic_b, detail, f"t{rank:04d}"})

    def query_tokens(
        self, file_id: int, rng=None, *, drop_probability: float = 0.35
    ) -> frozenset[str]:
        """A user's query for ``file_id``: a random non-empty token subset.

        Each token is independently dropped with ``drop_probability``
        (users rarely type the full name); at least one token — the most
        specific one available — always survives.
        """
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        rng = as_generator(rng)
        tokens = sorted(self.file_tokens(file_id))
        kept = {t for t in tokens if rng.random() >= drop_probability}
        if not kept:
            kept = {tokens[-1]}
        return frozenset(kept)

    # -- matching ------------------------------------------------------------
    @staticmethod
    def match(query_tokens: Iterable[str], file_tokens: Iterable[str]) -> bool:
        """Conjunctive keyword match: every query term appears in the file."""
        return frozenset(query_tokens) <= frozenset(file_tokens)

    def file_matches(self, query_tokens: Iterable[str], file_id: int) -> bool:
        return self.match(query_tokens, self.file_tokens(file_id))

    def search_library(
        self, query_tokens: Iterable[str], library: Iterable[int]
    ) -> list[int]:
        """All files in ``library`` matching the query (sorted)."""
        q = frozenset(query_tokens)
        return sorted(f for f in library if self.match(q, self.file_tokens(f)))

    # -- relationship to exact-id matching -----------------------------------
    def hit_rate_vs_exact(
        self, rng, *, n_queries: int = 500, library: frozenset[int] | None = None
    ) -> tuple[float, float]:
        """(exact-id hit rate, keyword hit rate) on random partial queries.

        Keyword matching can only find *more*: any library containing the
        target file matches its partial query (containment), and other
        same-category files may match too.
        """
        rng = as_generator(rng)
        if library is None:
            library = frozenset(
                int(rng.integers(0, self.catalog.n_files)) for _ in range(200)
            )
        exact_hits = 0
        keyword_hits = 0
        for _ in range(n_queries):
            target = int(rng.integers(0, self.catalog.n_files))
            q = self.query_tokens(target, rng)
            if target in library:
                exact_hits += 1
            if self.search_library(q, library):
                keyword_hits += 1
        return exact_hits / n_queries, keyword_hits / n_queries
