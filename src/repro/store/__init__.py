"""Minimal in-memory relational store.

The original study imported its 7-day Gnutella trace into a relational
database (MySQL) and drove a PHP simulator against it: deduplicating records
by GUID, *joining* queries with replies to form query–reply pairs, keeping
temporary tables for the current rule set, and speeding up frequent lookups
with indices.  This subpackage provides the minimal relational substrate the
reproduction needs for the same pipeline:

* :class:`~repro.store.table.Table` — typed columns, row append/extend,
  predicate selection, projection;
* :class:`~repro.store.index.HashIndex` — exact-match index on a column,
  kept consistent as rows are appended;
* :func:`~repro.store.query.inner_join` / :func:`~repro.store.query.group_count`
  — the two relational operations the paper's pipeline actually performs
  (GUID equi-join, pair-frequency aggregation);
* :class:`~repro.store.database.Database` — a named collection of tables,
  round-trippable through a JSON-lines file (``save`` / ``load``).

The store favours clarity over generality: it is append-oriented (trace
import never updates rows in place) and deliberately small.
"""

from repro.store.database import Database
from repro.store.index import HashIndex
from repro.store.query import group_count, inner_join
from repro.store.table import Column, Table

__all__ = ["Column", "Database", "HashIndex", "Table", "group_count", "inner_join"]
