"""Tests for repro.network.overlay."""

import pytest

from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.flooding import FloodingPolicy

SMALL = OverlayConfig(n_nodes=60, degree=4, n_categories=6, files_per_category=30, library_size=20)


class TestOverlayConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_nodes": 2},
            {"topology": "hypercube"},
            {"degree": 1},
            {"ttl": 0},
            {"library_size": -1},
            {"churn_rate": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OverlayConfig(**kwargs)


class TestOverlayBuild:
    def test_nodes_populated(self):
        overlay = Overlay(SMALL, seed=1)
        assert overlay.n_nodes == 60
        peer = overlay.node(0)
        assert peer.library  # shares something
        assert peer.profile.categories

    def test_libraries_respect_interests(self):
        overlay = Overlay(SMALL, seed=2)
        for node_id in range(10):
            peer = overlay.node(node_id)
            for f in peer.library:
                assert overlay.catalog.category_of(f) in peer.profile.categories

    def test_deterministic(self):
        a = Overlay(SMALL, seed=3)
        b = Overlay(SMALL, seed=3)
        assert a.node(5).library == b.node(5).library
        assert a.topology.edges() == b.topology.edges()

    @pytest.mark.parametrize("topology", ["random_regular", "erdos_renyi", "barabasi_albert"])
    def test_topology_kinds(self, topology):
        cfg = OverlayConfig(
            n_nodes=60, degree=4, topology=topology,
            n_categories=6, files_per_category=30, library_size=10,
        )
        overlay = Overlay(cfg, seed=4)
        assert overlay.topology.is_connected()

    def test_odd_regular_rejected(self):
        cfg = OverlayConfig(n_nodes=61, degree=3)
        with pytest.raises(ValueError):
            Overlay(cfg, seed=1)


class TestQueries:
    def test_make_query_fields(self):
        overlay = Overlay(SMALL, seed=5)
        q = overlay.make_query()
        assert 0 <= q.origin < 60
        assert overlay.catalog.category_of(q.file_id) == q.category
        assert q.ttl == SMALL.ttl

    def test_query_category_from_profile(self):
        overlay = Overlay(SMALL, seed=6)
        q = overlay.make_query(origin=7)
        assert q.category in overlay.node(7).profile.categories

    def test_guids_unique(self):
        overlay = Overlay(SMALL, seed=7)
        guids = {overlay.make_query().guid for _ in range(50)}
        assert len(guids) == 50


class TestWorkload:
    def test_requires_policies(self):
        overlay = Overlay(SMALL, seed=8)
        with pytest.raises(RuntimeError):
            overlay.run_workload(1)

    def test_flooding_workload_runs(self):
        overlay = Overlay(SMALL, seed=9)
        overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
        stats = overlay.run_workload(20)
        assert stats.n_queries == 20
        assert stats.messages_per_query > 0

    def test_warmup_not_recorded(self):
        overlay = Overlay(SMALL, seed=10)
        overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
        stats = overlay.run_workload(5, warmup=10)
        assert stats.n_queries == 5

    def test_negative_counts_rejected(self):
        overlay = Overlay(SMALL, seed=11)
        overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
        with pytest.raises(ValueError):
            overlay.run_workload(-1)


class TestChurn:
    def test_churn_replaces_identity(self):
        overlay = Overlay(SMALL, seed=12)
        overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
        before = {nid: overlay.node(nid).library for nid in range(60)}
        churned = overlay.churn_one()
        peer = overlay.node(churned)
        assert peer.generation == 1
        assert peer.policy is not None  # policy object retained (reset)
        assert peer.node_id == churned
        changed = peer.library != before[churned]
        assert changed or peer.profile is not None  # library virtually always changes

    def test_generation_increments(self):
        overlay = Overlay(SMALL, seed=13)
        overlay.install_policies(lambda nid, ov: FloodingPolicy(nid, ov))
        for _ in range(200):
            overlay.churn_one()
        generations = [overlay.node(i).generation for i in range(60)]
        assert max(generations) >= 2
