"""Append-only pair write-ahead log.

One WAL segment is a flat file of (query-source, reply-source)
observations — the §III-B learning events a rule-routed servent folds
into its streaming counts.  Counts are cheap to update but expensive to
re-earn (the paper mines 7 days of trace for them), so every pushed
pair is journaled *before* the next crash can lose it, and recovery
replays the tail on top of the last snapshot.

Layout::

    segment  := magic(8) record*
    magic    := b"RPWL" u16 version u16 reserved
    record   := u32 payload_len  u32 crc32(payload)  payload
    payload  := i64 source  i64 replier   (little-endian)

Every record is length-prefixed and CRC-32-checksummed, so a torn
final write (crash mid-append) is detected, not misparsed: readers
stop at the first record whose frame is short or whose checksum
mismatches, and report the byte offset of the last good record so the
caller can truncate the tail.

Durability is a knob, not a policy baked in:

``always``
    fsync after every appended record (slowest, loses nothing);
``interval``
    flush every append, fsync at most once per ``fsync_interval``
    seconds (the default — bounded loss window);
``never``
    leave flushing to the OS (fastest; a crash can lose the tail,
    which recovery then truncates).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from time import monotonic

__all__ = [
    "FSYNC_POLICIES",
    "WAL_MAGIC",
    "WalError",
    "WalReadResult",
    "WalWriter",
    "read_wal",
    "wal_header",
]

WAL_VERSION = 1
WAL_MAGIC = b"RPWL" + struct.pack("<HH", WAL_VERSION, 0)

FSYNC_POLICIES = ("always", "interval", "never")

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_PAIR = struct.Struct("<qq")  # source, replier

#: bytes one appended record occupies on disk.
RECORD_BYTES = _FRAME.size + _PAIR.size


class WalError(Exception):
    """A WAL file that is not a WAL (bad magic / unsupported version)."""


class WalWriter:
    """Appends checksummed pair records to one segment file."""

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "interval",
        fsync_interval: float = 1.0,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; pick from {FSYNC_POLICIES}"
            )
        if fsync_interval <= 0:
            raise ValueError("fsync_interval must be positive")
        self.path = path
        self.fsync = fsync
        self.fsync_interval = float(fsync_interval)
        self.records = 0
        self.bytes_written = 0
        self._last_sync = monotonic()
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._fh = open(path, "ab")
        if fresh:
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
            self.bytes_written += len(WAL_MAGIC)

    def append(self, source: int, replier: int) -> int:
        """Journal one observed pair; returns bytes written."""
        payload = _PAIR.pack(source, replier)
        record = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self._fh.write(record)
        self.records += 1
        self.bytes_written += len(record)
        if self.fsync == "always":
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._last_sync = monotonic()
        elif self.fsync == "interval":
            self._fh.flush()
            now = monotonic()
            if now - self._last_sync >= self.fsync_interval:
                os.fsync(self._fh.fileno())
                self._last_sync = now
        return len(record)

    def sync(self) -> None:
        """Force everything appended so far onto stable storage."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._last_sync = monotonic()

    def close(self, *, sync: bool = True) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        if sync and self.fsync != "never":
            os.fsync(self._fh.fileno())
        self._fh.close()

    @property
    def closed(self) -> bool:
        return self._fh.closed


@dataclass(frozen=True)
class WalReadResult:
    """One segment's decoded content plus its integrity verdict."""

    pairs: list[tuple[int, int]]
    #: byte offset just past the last intact record — the truncation
    #: point a recovery should cut a torn segment back to.
    good_offset: int
    #: True when the whole file parsed; False when reading stopped at a
    #: torn or corrupt record (everything before it is still usable).
    clean: bool


def read_wal(path: str) -> WalReadResult:
    """Decode a segment, stopping (not failing) at the first bad record.

    Raises :class:`WalError` only when the file cannot be a WAL at all
    (wrong magic or unsupported version); torn tails and checksum
    mismatches — the crash signatures recovery exists for — yield a
    ``clean=False`` result holding every record up to the damage.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < len(WAL_MAGIC):
        # shorter than a header: a segment torn during creation.
        return WalReadResult([], 0, clean=False)
    if data[:4] != WAL_MAGIC[:4]:
        raise WalError(f"{path}: not a pair WAL (bad magic)")
    (version, _reserved) = struct.unpack("<HH", data[4:8])
    if version != WAL_VERSION:
        raise WalError(f"{path}: unsupported WAL version {version}")
    pairs: list[tuple[int, int]] = []
    offset = len(WAL_MAGIC)
    while offset < len(data):
        frame_end = offset + _FRAME.size
        if frame_end > len(data):
            return WalReadResult(pairs, offset, clean=False)
        length, crc = _FRAME.unpack_from(data, offset)
        payload_end = frame_end + length
        if length != _PAIR.size or payload_end > len(data):
            return WalReadResult(pairs, offset, clean=False)
        payload = data[frame_end:payload_end]
        if zlib.crc32(payload) != crc:
            return WalReadResult(pairs, offset, clean=False)
        pairs.append(_PAIR.unpack(payload))
        offset = payload_end
    return WalReadResult(pairs, offset, clean=True)


def wal_header(path: str) -> dict:
    """Summarize one segment for ``repro persist inspect``."""
    result = read_wal(path)
    return {
        "path": path,
        "version": WAL_VERSION,
        "records": len(result.pairs),
        "bytes": os.path.getsize(path),
        "good_bytes": result.good_offset,
        "clean": result.clean,
    }
