"""Tests for repro.experiments.report (markdown generation)."""

from repro.experiments.report import build_markdown_report, result_to_markdown
from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow


def make_result(ok=True):
    return ExperimentResult(
        experiment_id="fig1",
        title="Sliding Window",
        rows=[
            ComparisonRow("average coverage", 0.80, 0.802, band=(0.72, 0.88)),
            ComparisonRow(
                "average success", 0.79, 0.5 if not ok else 0.79, band=(0.7, 0.88)
            ),
            ComparisonRow("informational", "n/a", 1.23),
        ],
        series={"coverage": [0.8, 0.81], "success": [0.79, 0.78]},
    )


class TestResultToMarkdown:
    def test_contains_table_and_sparklines(self):
        text = result_to_markdown(make_result())
        assert "## `fig1`" in text
        assert "| average coverage | 0.800 | 0.802 |" in text
        assert "`coverage` over blocks:" in text
        assert "OK" in text

    def test_miss_flagged(self):
        text = result_to_markdown(make_result(ok=False))
        assert "**MISS**" in text

    def test_unbanded_row(self):
        text = result_to_markdown(make_result())
        assert "| informational | n/a | 1.230 | — | — |" in text


class TestBuildReport:
    def test_summary_counts(self):
        report = build_markdown_report([make_result(), make_result(ok=False)])
        assert "2 experiments; 1 fully within" in report
        assert report.count("## `fig1`") == 2


class TestCliMarkdown:
    def test_cli_writes_report(self, tmp_path, monkeypatch):
        """`python -m repro all --markdown` writes the report file.

        The registry is shrunk to one cheap experiment at a tiny scale so
        the test stays fast; the report path itself is what is under test.
        """
        import repro.experiments.registry as registry
        from repro.cli import main
        from repro.experiments.config import ExperimentScale

        tiny = ExperimentScale("t", 6, 8, 30_000, 80, 30, 60)
        monkeypatch.setattr("repro.experiments.config.DEFAULT_SCALE", tiny)
        fig1 = registry.EXPERIMENTS["fig1"]
        monkeypatch.setattr(registry, "EXPERIMENTS", {"fig1": fig1})
        monkeypatch.setattr("repro.experiments.EXPERIMENTS", {"fig1": fig1})

        out = tmp_path / "report.md"
        code = main(["all", "--markdown", str(out)])
        assert code in (0, 1)
        assert out.exists()
        assert "## `fig1`" in out.read_text()
