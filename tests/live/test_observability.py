"""Live-stack observability: scrapes, traces and eager counters.

Boots real loopback clusters with ``observe=True`` and checks the
tentpole end to end: one shared registry renders per-node Prometheus
series for the whole cluster, and one shared tracer reconstructs a
query's hop-by-hop path across every node it crossed.
"""

import asyncio
import urllib.request

import numpy as np
import pytest

from repro.live import LiveCluster, LiveServent, harness_config, make_vocabulary
from repro.network.topology import Topology
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import QueryTracer


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def star(n: int) -> Topology:
    return Topology(n, [(0, i) for i in range(1, n)])


async def _warmed_cluster_body(check):
    """Star cluster, rule-routed, observed; repeat queries to grow rules."""
    vocab = make_vocabulary(8)
    async with LiveCluster(
        star(4),
        rule_routed=True,
        top_k=1,
        config=harness_config(),
        observe=True,
    ) as cluster:
        cluster.stock_partitioned_library(vocab)
        rng = np.random.default_rng(7)
        terms = [t for i, t in enumerate(vocab) if i % 4 != 1]
        for _ in range(30):
            await cluster.query(1, terms[int(rng.integers(0, len(terms)))])
        await check(cluster)


class TestClusterScrape:
    def test_metrics_cover_every_claimed_family(self):
        async def check(cluster):
            text = cluster.render_metrics()
            # α/ρ per node (the paper's self-measurement quantities).
            assert 'repro_routing_coverage{node="1"}' in text
            assert 'repro_routing_success{node="1"}' in text
            # traffic counters with direction labels.
            assert 'repro_frames_total{node="0",direction="in"}' in text
            assert 'repro_bytes_total{node="0",direction="out"}' in text
            # the decode-latency histogram recorded real observations.
            assert 'repro_decode_seconds_bucket{node="0",le="+Inf"}' in text
            count_line = next(
                line
                for line in text.splitlines()
                if line.startswith('repro_decode_seconds_count{node="0"}')
            )
            assert float(count_line.split()[-1]) > 0
            # routing decisions split rule vs flood.
            assert 'repro_routing_decisions_total{node="0",decision="rule"}' in text
            assert 'repro_rules_active{node="0"}' in text

        run(_warmed_cluster_body(check))

    def test_success_gauge_matches_stats(self):
        async def check(cluster):
            text = cluster.render_metrics()
            stats = cluster.nodes[1].stats
            expected = stats.hits_received / stats.queries_issued
            line = next(
                l
                for l in text.splitlines()
                if l.startswith('repro_routing_success{node="1"}')
            )
            assert float(line.split()[-1]) == pytest.approx(expected)

        run(_warmed_cluster_body(check))

    def test_unobserved_cluster_refuses_scrape(self):
        cluster = LiveCluster(star(2))
        with pytest.raises(RuntimeError):
            cluster.render_metrics()
        with pytest.raises(RuntimeError):
            cluster.trace(1)


class TestClusterTrace:
    def test_answered_query_has_full_path(self):
        async def check(cluster):
            answered = [
                (node_id, term, guid)
                for node_id, term, guid in cluster.issued
                if cluster.trace(guid) is not None
                and cluster.trace(guid).answered
            ]
            assert answered
            _node_id, term, guid = answered[-1]
            trace = cluster.trace(guid)
            kinds = trace.kinds()
            assert kinds[0] == "issued"
            assert "received" in kinds
            assert "hit" in kinds
            # sibling flood branches may still land events afterwards, so
            # "delivered" is present but not necessarily last.
            assert "delivered" in kinds
            assert trace.events[0].info == term
            text = cluster.format_trace(guid)
            assert f"query {guid:#x}" in text
            assert "(answered)" in text

        run(_warmed_cluster_body(check))

    def test_unanswered_query_traces_timeout(self):
        async def body():
            vocab = make_vocabulary(4)
            async with LiveCluster(
                star(3), config=harness_config(), observe=True
            ) as cluster:
                cluster.stock_partitioned_library(vocab)
                hits = await cluster.query(1, "kwmissing")
                assert hits == 0
                _node, _term, guid = cluster.issued[-1]
                kinds = cluster.trace(guid).kinds()
                assert "timeout" in kinds
                assert "flooded" in kinds  # plain servents flood
                assert "no trace" in cluster.format_trace(0xDEAD)

        run(body())


class TestEagerStats:
    def test_rule_counters_current_mid_run_without_snapshot(self):
        async def check(cluster):
            # Satellite fix: StreamingRuleServent tallies into the node's
            # stats object as decisions happen — no back-fill at snapshot
            # time — so a mid-run reader sees live values.
            node = cluster.nodes[0]
            stats = node.stats
            assert stats.queries_rule_routed + stats.queries_flooded > 0
            assert stats.queries_rule_routed == node.servent.n_rule_routed
            assert stats.queries_flooded == node.servent.n_flooded
            assert stats.rule_regenerations == node.servent.n_rule_regenerations
            assert node.snapshot()["queries_rule_routed"] == (
                stats.queries_rule_routed
            )

        run(_warmed_cluster_body(check))


class TestNodeEndpoint:
    def test_live_servent_serves_metrics_and_health_over_http(self):
        async def body():
            node = LiveServent(
                3,
                rule_routed=True,
                registry=MetricsRegistry(),
                tracer=QueryTracer(),
                obs_port=0,
            )
            await node.start()
            try:
                base = f"http://127.0.0.1:{node.obs_port}"
                metrics = await asyncio.to_thread(
                    lambda: urllib.request.urlopen(f"{base}/metrics").read()
                )
                health = await asyncio.to_thread(
                    lambda: urllib.request.urlopen(f"{base}/healthz").read()
                )
            finally:
                await node.close()
            assert b'repro_connected_peers{node="3"} 0' in metrics
            assert b'"status": "ok"' in health

        run(body())

    def test_obs_port_requires_registry(self):
        with pytest.raises(ValueError):
            LiveServent(1, obs_port=0)


class TestDisabledPath:
    def test_default_node_carries_no_instruments(self):
        node = LiveServent(0, rule_routed=True)
        assert node.instruments is None
        assert node.registry is None
        assert node.obs_port is None
        assert node.render_metrics() == ""
        assert node.servent.tracer is None
