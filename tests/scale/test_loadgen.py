"""Open-loop load generation: determinism, distributions, the stall property."""

import asyncio
import statistics

import pytest

from repro.live.connection import accept_handshake
from repro.scale.loadgen import (
    TASK_BROWSE,
    TASK_IDLE,
    TASK_QUERY,
    LoadConfig,
    LoadGenerator,
    build_schedule,
)

VOCAB = ["alpha", "bravo", "charlie", "delta"]


def run(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestSchedule:
    def test_same_seed_same_schedule(self):
        config = LoadConfig(rps=100.0, duration=5.0, seed=42)
        a = build_schedule(config, VOCAB, 3)
        b = build_schedule(config, VOCAB, 3)
        assert a == b
        c = build_schedule(
            LoadConfig(rps=100.0, duration=5.0, seed=43), VOCAB, 3
        )
        assert a != c

    def test_offered_rate_matches_rps(self):
        for think in ("exponential", "lognormal", "fixed"):
            config = LoadConfig(
                rps=200.0, duration=20.0, seed=1, think=think
            )
            schedule = build_schedule(config, VOCAB, 2)
            # expectation is rps * duration arrivals; the seeded draw
            # should land well within 10% for 4000 expected samples.
            assert len(schedule) == pytest.approx(4000, rel=0.10), think
            gaps = [
                b.at - a.at for a, b in zip(schedule, schedule[1:])
            ]
            assert statistics.mean(gaps) == pytest.approx(
                1.0 / config.rps, rel=0.10
            ), think

    def test_fixed_think_is_a_metronome(self):
        config = LoadConfig(rps=10.0, duration=1.0, think="fixed")
        schedule = build_schedule(config, VOCAB, 1)
        gaps = {round(b.at - a.at, 9) for a, b in zip(schedule, schedule[1:])}
        assert gaps == {0.1}

    def test_mix_weights_respected(self):
        config = LoadConfig(
            rps=500.0,
            duration=10.0,
            seed=5,
            mix=((TASK_QUERY, 0.5), (TASK_BROWSE, 0.25), (TASK_IDLE, 0.25)),
        )
        schedule = build_schedule(config, VOCAB, 2)
        kinds = [task.kind for task in schedule]
        n = len(kinds)
        assert kinds.count(TASK_QUERY) / n == pytest.approx(0.5, abs=0.05)
        assert kinds.count(TASK_BROWSE) / n == pytest.approx(0.25, abs=0.05)
        # queries carry a term from the vocabulary; the rest don't.
        for task in schedule:
            if task.kind == TASK_QUERY:
                assert task.term in VOCAB
            else:
                assert task.term == ""

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(rps=0.0, duration=1.0)
        with pytest.raises(ValueError):
            LoadConfig(rps=1.0, duration=1.0, trace_sample=-1)
        with pytest.raises(ValueError):
            LoadConfig(rps=1.0, duration=1.0, think="uniform")
        with pytest.raises(ValueError):
            LoadConfig(rps=1.0, duration=1.0, mix=(("query", -1.0),))
        with pytest.raises(ValueError):
            LoadConfig(rps=1.0, duration=1.0, mix=(("warble", 1.0),))
        with pytest.raises(ValueError):
            build_schedule(LoadConfig(rps=1.0, duration=1.0), [], 1)


async def stalled_servent(node_id: int = 999):
    """A server that completes the handshake, then reads and discards
    forever — the pathological target a closed-loop driver would
    coordinate with and an open-loop driver must not."""

    async def handle(reader, writer):
        try:
            await accept_handshake(reader, writer, node_id)
            while await reader.read(65536):
                pass
        except (OSError, asyncio.IncompleteReadError, Exception):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


class TestOpenLoopProperty:
    @pytest.mark.live
    def test_stalled_target_does_not_slow_the_schedule(self):
        """The acceptance property: a target that answers nothing must
        not stretch the offered schedule by more than 5%."""

        async def body():
            server, port = await stalled_servent()
            try:
                config = LoadConfig(
                    rps=150.0, duration=2.0, seed=3, request_timeout=0.3
                )
                generator = LoadGenerator(
                    [("127.0.0.1", port)], VOCAB, config
                )
                return await generator.run()
            finally:
                server.close()
                await server.wait_closed()

        result = run(body())
        assert result.requests > 0
        assert result.completed == 0
        # every non-idle request aged into a timeout...
        assert result.timeouts == result.requests
        assert result.error_rate == 1.0
        # ...while the generator kept offering load on schedule.
        assert result.schedule_stretch < 0.05
        assert result.achieved_rps == pytest.approx(
            result.requests / result.duration, rel=1e-6
        )

    @pytest.mark.live
    def test_unreachable_target_fails_fast(self):
        async def body():
            # a port with nothing listening: connect fails fast.
            server, port = await stalled_servent()
            server.close()
            await server.wait_closed()
            config = LoadConfig(rps=50.0, duration=0.5, seed=9)
            generator = LoadGenerator([("127.0.0.1", port)], VOCAB, config)
            with pytest.raises(OSError):
                await generator.run()

        run(body())
