"""Overlay assembly: topology + content + policies + workload.

:class:`Overlay` owns the peers and the engine, and drives query
workloads against a chosen routing policy.  Churn (peer turnover) can be
enabled between queries: a departed peer keeps its graph position (the
monitor-node view of Gnutella, where a connection slot refills) but gets
a fresh identity — new library, new interests, and a reset policy table
slot for its neighbors to re-learn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.traffic import TrafficStats
from repro.network.engine import QueryEngine
from repro.network.messages import Query
from repro.network.node import PeerNode
from repro.network.topology import (
    Topology,
    barabasi_albert,
    erdos_renyi,
    random_regular,
)
from repro.utils.rng import as_generator, spawn_child
from repro.utils.validation import check_probability
from repro.workload.content import ContentCatalog
from repro.workload.interests import InterestModel
from repro.workload.zipf import ZipfSampler

__all__ = ["OverlayConfig", "Overlay"]


@dataclass(frozen=True)
class OverlayConfig:
    """Parameters of an overlay experiment."""

    n_nodes: int = 800
    topology: str = "random_regular"  # or "erdos_renyi", "barabasi_albert"
    degree: int = 6
    n_categories: int = 40
    files_per_category: int = 250
    library_size: int = 60
    interests_per_peer: int = 4
    ttl: int = 7
    #: probability (per issued query) that one random peer churns.
    churn_rate: float = 0.0
    #: build a mutable topology (required by rule-driven rewiring, §VI).
    dynamic_topology: bool = False
    #: degree cap enforced on rewiring (dynamic topology only).
    max_degree: int | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 4:
            raise ValueError("n_nodes must be >= 4")
        if self.topology not in ("random_regular", "erdos_renyi", "barabasi_albert"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.degree < 2:
            raise ValueError("degree must be >= 2")
        if self.ttl < 1:
            raise ValueError("ttl must be >= 1")
        if self.library_size < 0:
            raise ValueError("library_size must be >= 0")
        check_probability("churn_rate", self.churn_rate)


class Overlay:
    """A populated unstructured overlay network."""

    def __init__(self, config: OverlayConfig | None = None, *, seed=None) -> None:
        self.config = config or OverlayConfig()
        self._rng = as_generator(seed)
        cfg = self.config
        topo_rng = spawn_child(self._rng)
        if cfg.topology == "random_regular":
            if (cfg.n_nodes * cfg.degree) % 2:
                raise ValueError("n_nodes * degree must be even for random_regular")
            self.topology: Topology = random_regular(cfg.n_nodes, cfg.degree, rng=topo_rng)
        elif cfg.topology == "erdos_renyi":
            self.topology = erdos_renyi(cfg.n_nodes, cfg.degree, rng=topo_rng)
        else:
            self.topology = barabasi_albert(cfg.n_nodes, max(1, cfg.degree // 2), rng=topo_rng)
        if cfg.dynamic_topology:
            from repro.network.dynamic import DynamicTopology

            self.topology = DynamicTopology.from_topology(
                self.topology, max_degree=cfg.max_degree
            )

        self.catalog = ContentCatalog(cfg.n_categories, cfg.files_per_category)
        self._interests = InterestModel(cfg.n_categories)
        self._file_rank = ZipfSampler(cfg.files_per_category, 1.0)
        self._nodes: list[PeerNode] = [
            self._fresh_peer(node_id) for node_id in range(cfg.n_nodes)
        ]
        self.engine = QueryEngine(self)
        self._next_guid = 0
        # Churn decisions draw from their own stream so workloads stay
        # paired across churn-rate sweeps (same queries, different churn).
        self._churn_rng = spawn_child(self._rng)

    # ------------------------------------------------------------------
    def _fresh_peer(self, node_id: int, generation: int = 0) -> PeerNode:
        profile = self._interests.sample_profile(
            self._rng, width=self.config.interests_per_peer
        )
        library = self.catalog.sample_library(
            self._rng, profile, size=self.config.library_size
        )
        return PeerNode(
            node_id=node_id,
            profile=profile,
            library=library,
            generation=generation,
        )

    def node(self, node_id: int) -> PeerNode:
        return self._nodes[node_id]

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def install_policies(self, policy_factory) -> None:
        """Give every node a policy instance from ``policy_factory(node_id, overlay)``."""
        for peer in self._nodes:
            peer.policy = policy_factory(peer.node_id, self)

    # ------------------------------------------------------------------
    def churn_one(self) -> int:
        """Replace one uniformly random peer with a fresh identity.

        The peer keeps its node id and edges (connection slots refill in
        unstructured overlays) but its content, interests, and learned
        policy state are reset; returns the churned node id.
        """
        node_id = int(self._churn_rng.integers(0, self.n_nodes))
        old = self._nodes[node_id]
        fresh = self._fresh_peer(node_id, generation=old.generation + 1)
        if old.policy is not None and hasattr(old.policy, "reset"):
            old.policy.reset()
        fresh.policy = old.policy
        self._nodes[node_id] = fresh
        return node_id

    # ------------------------------------------------------------------
    def make_query(self, origin: int | None = None) -> Query:
        """Draw a query from a random (or given) node's interest profile."""
        cfg = self.config
        if origin is None:
            origin = int(self._rng.integers(0, self.n_nodes))
        profile = self._nodes[origin].profile
        category = profile.sample_category(self._rng)
        rank = self._file_rank.sample(self._rng)
        file_id = category * cfg.files_per_category + rank
        self._next_guid += 1
        return Query(
            guid=self._next_guid,
            origin=origin,
            file_id=file_id,
            category=category,
            ttl=cfg.ttl,
        )

    def run_workload(
        self,
        n_queries: int,
        *,
        warmup: int = 0,
    ) -> TrafficStats:
        """Issue queries through each origin's installed policy.

        ``warmup`` queries are executed first without recording statistics,
        letting learning policies populate their tables.  With
        ``churn_rate`` > 0, each issued query may be preceded by one peer
        churning.
        """
        if n_queries < 0 or warmup < 0:
            raise ValueError("n_queries and warmup must be non-negative")
        stats = TrafficStats()
        for i in range(warmup + n_queries):
            if self.config.churn_rate > 0.0 and (
                float(self._churn_rng.random()) < self.config.churn_rate
            ):
                self.churn_one()
            query = self.make_query()
            policy = self._nodes[query.origin].policy
            if policy is None:
                raise RuntimeError(
                    "no policy installed; call install_policies() first"
                )
            outcome = policy.route_query(self.engine, query)
            if i >= warmup:
                stats.record(outcome)
        return stats
