"""Tests for repro.mining.fpgrowth, including the Apriori cross-check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.apriori import apriori
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import TransactionDataset


def make_market():
    return TransactionDataset(
        [
            {"bread", "milk"},
            {"bread", "diapers", "beer", "eggs"},
            {"milk", "diapers", "beer", "cola"},
            {"bread", "milk", "diapers", "beer"},
            {"bread", "milk", "diapers", "cola"},
        ]
    )


transactions_strategy = st.lists(
    st.sets(st.integers(0, 7), min_size=1, max_size=5), min_size=0, max_size=25
)


class TestFPGrowth:
    def test_known_example(self):
        ds = make_market()
        out = fpgrowth(ds, min_support_count=3)
        decoded = {ds.decode_itemset(s): c for s, c in out.items()}
        assert decoded[frozenset({"diapers", "beer"})] == 3
        assert decoded[frozenset({"bread", "milk"})] == 3

    def test_counts_match_exact_scan(self):
        ds = make_market()
        for itemset, count in fpgrowth(ds, min_support_count=2).items():
            assert ds.support_count(itemset) == count

    def test_max_size(self):
        ds = make_market()
        frequent = fpgrowth(ds, min_support_count=1, max_size=2)
        assert max(len(s) for s in frequent) == 2

    def test_empty_dataset(self):
        assert fpgrowth(TransactionDataset([]), min_support_count=1) == {}

    def test_single_path_tree(self):
        # Transactions forming a chain exercise the single-path shortcut.
        ds = TransactionDataset([{"a", "b", "c"}, {"a", "b"}, {"a"}])
        out = fpgrowth(ds, min_support_count=1)
        decoded = {ds.decode_itemset(s): c for s, c in out.items()}
        assert decoded[frozenset({"a"})] == 3
        assert decoded[frozenset({"a", "b"})] == 2
        assert decoded[frozenset({"a", "b", "c"})] == 1

    def test_rejects_bad_params(self):
        ds = make_market()
        with pytest.raises(ValueError):
            fpgrowth(ds, min_support_count=0)
        with pytest.raises(ValueError):
            fpgrowth(ds, min_support_count=1, max_size=0)

    @settings(max_examples=60, deadline=None)
    @given(transactions_strategy, st.integers(1, 4))
    def test_equals_apriori(self, transactions, min_support):
        """Property: FP-Growth and Apriori agree exactly."""
        ds = TransactionDataset(transactions)
        assert fpgrowth(ds, min_support_count=min_support) == apriori(
            ds, min_support_count=min_support
        )

    @settings(max_examples=30, deadline=None)
    @given(transactions_strategy, st.integers(1, 3), st.integers(1, 3))
    def test_equals_apriori_with_max_size(self, transactions, min_support, max_size):
        ds = TransactionDataset(transactions)
        assert fpgrowth(
            ds, min_support_count=min_support, max_size=max_size
        ) == apriori(ds, min_support_count=min_support, max_size=max_size)
