"""Exact-match hash indices over table columns."""

from __future__ import annotations

from typing import Any

__all__ = ["HashIndex"]


class HashIndex:
    """Hash index mapping a column value to the ids of rows holding it.

    The index is built eagerly from the current table contents and kept
    consistent by the table on every subsequent append.  Lookups are O(1)
    per key; this is what makes the GUID join over millions of trace rows
    feasible, just as the paper's database indices did.
    """

    def __init__(self, table, column_name: str) -> None:
        self.table = table
        self.column_name = column_name
        self._buckets: dict[Any, list[int]] = {}
        column = table.column(column_name)
        for rowid, value in enumerate(column):
            self._buckets.setdefault(value, []).append(rowid)

    def notify_append(self, rowid: int) -> None:
        """Called by the owning table after a row append."""
        value = self.table.column(self.column_name)[rowid]
        self._buckets.setdefault(value, []).append(rowid)

    def lookup(self, value: Any) -> list[int]:
        """Return the (possibly empty) list of row ids matching ``value``."""
        return list(self._buckets.get(value, ()))

    def first(self, value: Any) -> int | None:
        """Return the first row id matching ``value``, or ``None``."""
        rows = self._buckets.get(value)
        return rows[0] if rows else None

    def contains(self, value: Any) -> bool:
        return value in self._buckets

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    def keys(self):
        return self._buckets.keys()
