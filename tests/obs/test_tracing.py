"""Tests for GUID-keyed query tracing."""

import json
import time

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    QueryTracer,
    TraceEvent,
    format_trace,
    traced_guid,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRecording:
    def test_events_accumulate_in_order(self):
        tracer = QueryTracer(clock=FakeClock())
        tracer.record(0xAB, 0, "issued", info="kw1")
        tracer.record(0xAB, 0, "rule_routed", peer=1)
        tracer.record(0xAB, 1, "received", peer=0)
        trace = tracer.trace(0xAB)
        assert trace.kinds() == ["issued", "rule_routed", "received"]
        assert trace.events[0].info == "kw1"
        assert trace.events[1].peer == 1

    def test_unknown_guid(self):
        tracer = QueryTracer()
        assert tracer.trace(0x99) is None
        assert "no trace" in tracer.format(0x99)

    def test_answered_and_hops(self):
        tracer = QueryTracer()
        tracer.record(1, 0, "issued")
        tracer.record(1, 1, "received", peer=0)
        tracer.record(1, 1, "hit")
        assert not tracer.trace(1).answered
        assert tracer.trace(1).hops == 2
        tracer.record(1, 0, "delivered", peer=1)
        assert tracer.trace(1).answered
        assert tracer.answered_guids() == [1]

    def test_guids_oldest_first(self):
        tracer = QueryTracer()
        tracer.record(2, 0, "issued")
        tracer.record(1, 0, "issued")
        assert tracer.guids() == [2, 1]
        assert len(tracer) == 2


class TestRetention:
    def test_max_traces_evicts_oldest(self):
        tracer = QueryTracer(max_traces=2)
        for guid in (1, 2, 3):
            tracer.record(guid, 0, "issued")
        assert tracer.guids() == [2, 3]

    def test_ttl_expires_stale_traces(self):
        clock = FakeClock()
        tracer = QueryTracer(ttl=10.0, clock=clock)
        tracer.record(1, 0, "issued")
        clock.now = 5.0
        tracer.record(2, 0, "issued")  # 1 is 5s stale: kept
        assert tracer.trace(1) is not None
        clock.now = 14.0
        tracer.record(3, 0, "issued")  # 1 is 14s stale: expired; 2 is 9s: kept
        assert tracer.trace(1) is None
        assert tracer.trace(2) is not None

    def test_activity_refreshes_ttl(self):
        clock = FakeClock()
        tracer = QueryTracer(ttl=10.0, clock=clock)
        tracer.record(1, 0, "issued")
        clock.now = 8.0
        tracer.record(1, 1, "received", peer=0)  # last_event := 8.0
        clock.now = 15.0
        tracer.record(2, 0, "issued")
        assert tracer.trace(1) is not None

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            QueryTracer(max_traces=0)
        with pytest.raises(ValueError):
            QueryTracer(ttl=0.0)


class TestFormatting:
    def test_format_shows_path_and_outcome(self):
        clock = FakeClock()
        tracer = QueryTracer(clock=clock)
        tracer.record(0xFF, 3, "issued", info="kw2")
        clock.now = 0.25
        tracer.record(0xFF, 0, "received", peer=3, info="ttl=7 hops=0")
        clock.now = 0.5
        tracer.record(0xFF, 3, "delivered", peer=0)
        text = tracer.format(0xFF)
        assert "query 0xff:" in text
        assert "(answered)" in text
        assert "issued" in text and "[kw2]" in text
        assert "<- 3" in text  # received renders an inbound arrow
        assert "+  0.2500s" in text
        assert text == format_trace(tracer.trace(0xFF))

    def test_outbound_arrow_for_forwarding_kinds(self):
        tracer = QueryTracer()
        tracer.record(1, 0, "flooded", peer=4)
        assert "-> 4" in tracer.format(1)
        assert "(unanswered)" in tracer.format(1)


class TestSampling:
    def test_traced_guid_picks_one_in_n(self):
        assert traced_guid(7, 1)
        assert traced_guid(7, 0)
        assert traced_guid(8, 4)
        assert not traced_guid(7, 4)
        kept = sum(1 for guid in range(100) if traced_guid(guid, 4))
        assert kept == 25

    def test_sampled_tracer_drops_unselected_guids(self):
        tracer = QueryTracer(sample=4, clock=FakeClock())
        tracer.record(8, 0, "issued")
        tracer.record(9, 0, "issued")
        assert tracer.wants(8) and not tracer.wants(9)
        assert tracer.guids() == [8]

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError):
            QueryTracer(sample=0)


class TestExplainability:
    def test_rule_fields_recorded_and_rendered(self):
        clock = FakeClock()
        tracer = QueryTracer(clock=clock)
        tracer.record(1, 0, "issued", ttl=7)
        tracer.record(
            1, 0, "rule_routed", peer=2,
            ttl=6, antecedent=5, consequent=2,
            confidence=0.75, support=12,
        )
        tracer.record(1, 0, "flooded", peer=3, reason="no_covering_rule")
        events = tracer.trace(1).events
        assert events[0].ttl == 7
        assert events[1].antecedent == 5 and events[1].consequent == 2
        assert events[1].confidence == 0.75 and events[1].support == 12
        text = tracer.format(1)
        assert "rule(5=>2 conf=0.75 sup=12)" in text
        assert "ttl=7" in text
        assert "reason=no_covering_rule" in text

    def test_latency_is_node_local(self):
        clock = FakeClock()
        tracer = QueryTracer(clock=clock)
        tracer.record(1, 0, "issued")
        clock.now = 0.5
        tracer.record(1, 1, "received", peer=0)  # first sight of node 1
        clock.now = 0.7
        tracer.record(1, 1, "hit")
        events = tracer.trace(1).events
        assert events[0].latency == 0.0
        assert events[1].latency == 0.0
        assert events[2].latency == pytest.approx(0.2)

    def test_default_clock_is_wall_time(self):
        # Cross-process merge needs wall-clock timestamps; monotonic
        # clocks have per-process epochs.
        tracer = QueryTracer()
        before = time.time()
        tracer.record(1, 0, "issued")
        after = time.time()
        assert before <= tracer.trace(1).events[0].ts <= after


class TestExport:
    def test_event_dict_round_trip(self):
        event = TraceEvent(
            1.5, 3, "rule_routed", 4, "kw",
            ttl=6, antecedent=2, consequent=4,
            confidence=0.5, support=9, reason="", latency=0.25,
        )
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_to_dict_omits_unset_fields(self):
        doc = TraceEvent(0.0, 1, "issued").to_dict()
        assert doc == {"ts": 0.0, "node": 1, "kind": "issued"}

    def test_export_jsonl_one_event_per_line(self):
        tracer = QueryTracer(clock=FakeClock())
        tracer.record(5, 0, "issued", ttl=7)
        tracer.record(5, 1, "received", peer=0)
        tracer.record(6, 1, "issued")
        lines = tracer.export_jsonl().splitlines()
        docs = [json.loads(line) for line in lines]
        assert [d["guid"] for d in docs] == [5, 5, 6]
        assert docs[0]["kind"] == "issued" and docs[0]["ttl"] == 7
        assert docs[1]["peer"] == 0
        assert QueryTracer().export_jsonl() == ""

    def test_on_event_sees_every_recorded_event(self):
        seen = []
        tracer = QueryTracer(
            clock=FakeClock(),
            sample=2,
            on_event=lambda guid, event: seen.append((guid, event.kind)),
        )
        tracer.record(2, 0, "issued")
        tracer.record(3, 0, "issued")  # unsampled: no callback
        tracer.record(2, 1, "received", peer=0)
        assert seen == [(2, "issued"), (2, "received")]


class TestNullTracer:
    def test_noop_everything(self):
        tracer = NullTracer()
        tracer.record(1, 0, "issued")
        assert tracer.trace(1) is None
        assert tracer.guids() == []
        assert tracer.answered_guids() == []
        assert len(tracer) == 0
        assert tracer.format(1) == "tracing disabled"
        assert NULL_TRACER.enabled is False
        assert QueryTracer().enabled is True
