"""Bench `static`: §V-A — Static Ruleset degrades and never recovers.

Paper: success ≈ 0 by ~trial 16; coverage lingers near 0.4 before
decaying; 365-trial averages coverage 0.18, success < 0.02.
"""

from benchmarks.conftest import run_and_report


def test_static_ruleset(benchmark):
    result = run_and_report(benchmark, "static")
    # The series itself is the figure-equivalent: success must collapse
    # and stay collapsed while coverage retains a long tail.
    success = result.series["success"]
    coverage = result.series["coverage"]
    assert max(success[20:], default=0.0) < 0.15
    assert coverage[-1] > 0.05
