"""Experiment registry: one runner per paper figure/result.

Each experiment is a seeded, configured function returning both the raw
series and :class:`~repro.metrics.report.ComparisonRow` entries that line
the measured values up against the paper's reported ones.  The benchmark
harness (``benchmarks/``) and EXPERIMENTS.md are generated from these.

Scale: by default experiments run at a laptop-friendly scale (fewer
blocks / smaller overlays than the paper's 365-trial full runs).  Set the
environment variable ``REPRO_FULL_SCALE=1`` to run the paper's full
3.65M-pair trace lengths.
"""

from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.results import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentScale",
    "current_scale",
    "get_experiment",
    "run_experiment",
]
