"""Hop-synchronous query propagation.

The engine implements the Gnutella mechanics every routing policy builds
on: per-node duplicate suppression by GUID, TTL decrement per hop, hit
detection against node libraries, and reverse-path reply delivery.  The
reply pass is what feeds learning policies — for each hit, every node on
the forward path observes which *downstream* neighbor the reply came back
through and which *upstream* neighbor originally handed it the query,
exactly the (antecedent, consequent) events the paper mines.

Traffic accounting counts **query transmissions** (one per edge
traversal); reply messages are proportional to hits in every scheme and
are therefore not part of the comparison, as in the paper.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.metrics.traffic import QueryOutcome
from repro.network.messages import Query
from repro.utils.rng import as_generator

__all__ = ["QueryEngine"]

SelectFn = Callable[[int, int | None, Query], Sequence[int]]


class QueryEngine:
    """Propagation primitives over one overlay."""

    def __init__(self, overlay) -> None:
        self.overlay = overlay

    # ------------------------------------------------------------------
    def broadcast(
        self,
        query: Query,
        select: SelectFn,
        *,
        feedback: bool = True,
    ) -> QueryOutcome:
        """Propagate ``query`` breadth-first using ``select`` at each node.

        ``select(node, upstream, query)`` returns the neighbors to forward
        to (the engine removes the upstream and already-counted duplicate
        deliveries are suppressed per standard Gnutella behaviour).  For
        the origin, ``upstream`` is ``None``.
        """
        overlay = self.overlay
        origin = query.origin
        parent: dict[int, int | None] = {origin: None}
        hops: dict[int, int] = {origin: 0}
        messages = 0
        duplicates = 0
        providers: list[int] = []
        first_hit_hops: int | None = None

        if overlay.node(origin).shares(query.file_id):
            # Local library satisfies the query with zero traffic.
            return QueryOutcome(
                query_id=query.guid,
                messages=0,
                hits=1,
                first_hit_hops=0,
                duplicates=0,
            )

        frontier: list[int] = [origin]
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                depth = hops[node]
                if depth >= query.ttl:
                    continue
                upstream = parent[node]
                targets = select(node, upstream, query)
                for target in targets:
                    if target == upstream:
                        continue
                    messages += 1
                    if target in parent:
                        duplicates += 1
                        continue
                    parent[target] = node
                    hops[target] = depth + 1
                    if overlay.node(target).shares(query.file_id):
                        providers.append(target)
                        if first_hit_hops is None:
                            first_hit_hops = depth + 1
                    next_frontier.append(target)
            frontier = next_frontier

        if feedback and providers:
            self._deliver_replies(query, providers, parent)
        return QueryOutcome(
            query_id=query.guid,
            messages=messages,
            hits=len(providers),
            first_hit_hops=first_hit_hops,
            duplicates=duplicates,
        )

    def _deliver_replies(
        self, query: Query, providers: list[int], parent: dict[int, int | None]
    ) -> None:
        """Walk each hit's reverse path, notifying learning policies.

        At node ``w`` on the path, the reply arrived through ``downstream``
        (the next hop toward the provider) in response to a query received
        from ``upstream`` (or from the local user at the origin, modelled
        as the node's own id — the antecedent for locally issued queries).
        """
        overlay = self.overlay
        for provider in providers:
            node = provider
            while True:
                up = parent[node]
                if up is None:
                    break
                downstream = node
                w = up
                upstream_of_w = parent[w] if parent[w] is not None else w
                policy = overlay.node(w).policy
                if policy is not None and hasattr(policy, "on_reply"):
                    policy.on_reply(
                        node_id=w,
                        upstream=upstream_of_w,
                        downstream=downstream,
                        query=query,
                        provider=provider,
                    )
                node = w

    # ------------------------------------------------------------------
    def walk(
        self,
        query: Query,
        *,
        n_walkers: int,
        rng=None,
        stop_on_hit: bool = True,
    ) -> QueryOutcome:
        """k-random-walk propagation [6].

        ``n_walkers`` walkers leave the origin; each step forwards the
        query to one uniformly random neighbor (avoiding an immediate
        bounce-back when possible) and costs one message.  A walker
        terminates after ``query.ttl`` steps or upon landing on a
        provider (when ``stop_on_hit``).
        """
        if n_walkers < 1:
            raise ValueError("n_walkers must be >= 1")
        rng = as_generator(rng)
        overlay = self.overlay
        origin = query.origin

        if overlay.node(origin).shares(query.file_id):
            return QueryOutcome(query.guid, 0, 1, 0, 0)

        messages = 0
        duplicates = 0
        visited: set[int] = {origin}
        providers: set[int] = set()
        first_hit_hops: int | None = None

        for _ in range(n_walkers):
            node = origin
            prev: int | None = None
            for step in range(query.ttl):
                neighbors = overlay.topology.neighbors(node)
                if not neighbors:
                    break
                choices = [v for v in neighbors if v != prev] or list(neighbors)
                target = choices[int(rng.integers(0, len(choices)))]
                messages += 1
                if target in visited:
                    duplicates += 1
                else:
                    visited.add(target)
                prev, node = node, target
                if overlay.node(node).shares(query.file_id):
                    providers.add(node)
                    if first_hit_hops is None:
                        first_hit_hops = step + 1
                    if stop_on_hit:
                        break
        return QueryOutcome(
            query_id=query.guid,
            messages=messages,
            hits=len(providers),
            first_hit_hops=first_hit_hops,
            duplicates=duplicates,
        )

    # ------------------------------------------------------------------
    def probe(self, query: Query, targets: Sequence[int]) -> tuple[list[int], int]:
        """Directly ask specific nodes (shortcut checks).

        Each probe costs one message; returns (hit nodes, messages).
        """
        hits = []
        messages = 0
        for target in targets:
            messages += 1
            if self.overlay.node(target).shares(query.file_id):
                hits.append(target)
        return hits, messages
