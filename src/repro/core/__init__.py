"""The paper's contribution: association-rule query routing.

Rules here are the specialization described in §III-B.1 of the paper:
``{host1} -> {host2}`` where *host1* is a neighbor the monitor node receives
queries from and *host2* is the neighbor that was the next hop on a path
that previously produced hits for host1's queries.  Both sides are single
items, which makes generation (pair counting + support pruning) and testing
cheap enough to run per block.

* :mod:`~repro.core.rules` — :class:`Rule` and :class:`RuleSet`;
* :mod:`~repro.core.generation` — GENERATE-RULESET (numpy fast path and a
  pure-Python reference, tested equal), with optional top-k truncation and
  confidence pruning (the §VI extension);
* :mod:`~repro.core.evaluation` — RULESET-TEST computing the paper's
  coverage (alpha) and success (rho) measures;
* :mod:`~repro.core.thresholds` — rolling-mean thresholds for the adaptive
  strategy;
* :mod:`~repro.core.strategies` — STATIC-RULESET, SLIDING-WINDOW,
  LAZY-SLIDING-WINDOW, ADAPTIVE-SLIDING-WINDOW drivers;
* :mod:`~repro.core.streaming` — the future-work strategy that updates
  rules immediately as pairs arrive;
* :mod:`~repro.core.runner` — trace -> strategy -> :class:`StrategyRun`.
"""

from repro.core.category_rules import (
    CategorizedBlock,
    CategoryRuleSet,
    category_ruleset_test,
    generate_category_ruleset,
)
from repro.core.evaluation import (
    RulesetTestResult,
    ruleset_test,
    ruleset_test_random_subset,
)
from repro.core.generation import generate_ruleset
from repro.core.io import read_ruleset, write_ruleset
from repro.core.rules import Rule, RuleSet
from repro.core.runner import StrategyRun, TrialResult, run_strategy
from repro.core.strategies import (
    AdaptiveSlidingWindow,
    LazySlidingWindow,
    RulesetStrategy,
    SlidingWindow,
    StaticRuleset,
)
from repro.core.streaming import StreamingRules
from repro.core.thresholds import RollingThreshold

__all__ = [
    "AdaptiveSlidingWindow",
    "CategorizedBlock",
    "CategoryRuleSet",
    "LazySlidingWindow",
    "RollingThreshold",
    "Rule",
    "RuleSet",
    "RulesetStrategy",
    "RulesetTestResult",
    "SlidingWindow",
    "StaticRuleset",
    "StrategyRun",
    "StreamingRules",
    "TrialResult",
    "category_ruleset_test",
    "generate_category_ruleset",
    "generate_ruleset",
    "read_ruleset",
    "ruleset_test",
    "ruleset_test_random_subset",
    "run_strategy",
    "write_ruleset",
]
