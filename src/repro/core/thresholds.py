"""Rolling thresholds for the Adaptive Sliding Window strategy.

§III-B.6: "these thresholds are constantly updated so that threshold values
remain reasonable for all states of the network.  One simple method would be
to use the mean of the previous N values."  The paper's experiments start
from a threshold of 0.7 and compute means over the previous 10 (Fig. 4) or
50 values.
"""

from __future__ import annotations

from repro.utils.stats import RollingMean

__all__ = ["RollingThreshold"]


class RollingThreshold:
    """Threshold = ``slack`` x mean of the previous ``window`` observations.

    Parameters
    ----------
    window:
        How many previous values the mean covers (paper: 10 or 50).
    initial:
        Threshold reported before any history exists (paper: 0.7).
    slack:
        Multiplier applied to the rolling mean; values slightly below 1.0
        stop a strategy from regenerating on every routine fluctuation.
    """

    def __init__(self, window: int = 10, initial: float = 0.7, slack: float = 1.0) -> None:
        if not 0.0 <= initial <= 1.0:
            raise ValueError("initial must be in [0, 1]")
        if not 0.0 < slack <= 1.0:
            raise ValueError("slack must be in (0, 1]")
        self._mean = RollingMean(window, default=initial)
        self.slack = float(slack)
        self.initial = float(initial)

    @property
    def window(self) -> int:
        return self._mean.window

    def current(self) -> float:
        """Threshold to compare the *next* observation against."""
        return self.slack * self._mean.value()

    def observe(self, value: float) -> None:
        """Record a measured coverage/success value into the history."""
        if not 0.0 <= value <= 1.0:
            raise ValueError("observations must be in [0, 1]")
        self._mean.push(value)

    def history_length(self) -> int:
        return len(self._mean)
