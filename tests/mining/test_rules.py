"""Tests for repro.mining.rules."""

import pytest

from repro.mining.apriori import apriori
from repro.mining.rules import generate_rules
from repro.mining.transactions import TransactionDataset


def make_market():
    return TransactionDataset(
        [
            {"bread", "milk"},
            {"bread", "diapers", "beer", "eggs"},
            {"milk", "diapers", "beer", "cola"},
            {"bread", "milk", "diapers", "beer"},
            {"bread", "milk", "diapers", "cola"},
        ]
    )


def mine_rules(min_confidence=0.0, min_support=0.0, min_support_count=1):
    ds = make_market()
    frequent = apriori(ds, min_support_count=min_support_count)
    return generate_rules(
        ds, frequent, min_confidence=min_confidence, min_support=min_support
    )


def find(rules, antecedent, consequent):
    a, c = frozenset(antecedent), frozenset(consequent)
    for rule in rules:
        if rule.antecedent == a and rule.consequent == c:
            return rule
    return None


class TestGenerateRules:
    def test_diapers_implies_beer(self):
        rule = find(mine_rules(), {"diapers"}, {"beer"})
        assert rule is not None
        assert rule.support == pytest.approx(0.6)
        assert rule.confidence == pytest.approx(0.75)

    def test_confidence_pruning(self):
        rules = mine_rules(min_confidence=0.8)
        assert find(rules, {"diapers"}, {"beer"}) is None  # 0.75 < 0.8
        assert find(rules, {"beer"}, {"diapers"}) is not None  # 3/3 = 1.0

    def test_support_pruning(self):
        rules = mine_rules(min_support=0.7)
        assert all(r.support >= 0.7 for r in rules)

    def test_multi_item_rules_exist(self):
        rules = mine_rules()
        rule = find(rules, {"diapers", "beer"}, {"bread"})
        assert rule is not None

    def test_sorted_by_confidence_then_support(self):
        rules = mine_rules()
        keys = [(-r.confidence, -r.support) for r in rules]
        assert keys == sorted(keys)

    def test_antecedent_consequent_disjoint_and_nonempty(self):
        for rule in mine_rules():
            assert rule.antecedent
            assert rule.consequent
            assert not (rule.antecedent & rule.consequent)

    def test_empty_dataset_gives_no_rules(self):
        ds = TransactionDataset([])
        assert generate_rules(ds, {}) == []

    def test_rejects_bad_thresholds(self):
        ds = make_market()
        with pytest.raises(ValueError):
            generate_rules(ds, {}, min_confidence=1.5)
        with pytest.raises(ValueError):
            generate_rules(ds, {}, min_support=-0.1)

    def test_str_rendering(self):
        rule = find(mine_rules(), {"diapers"}, {"beer"})
        text = str(rule)
        assert "diapers" in text and "beer" in text and "->" in text
