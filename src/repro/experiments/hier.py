"""Two-tier rule routing vs the seed super-peer flooding baseline.

One workload, five arms at equal seeds (identical query sequences, per
:class:`~repro.network.hier.HierNetwork`'s rng contract):

* the seed :class:`~repro.network.superpeer.SuperPeerNetwork` baseline
  (satellite of ISSUE 10: its TrafficStats now carry the same α/ρ
  accounting, with α = 0 by construction);
* ``flood`` — HierNetwork in baseline mode (must match the seed
  baseline exactly; reported as a banded identity check);
* ``leaf-rules`` — the paper's flat per-node rule tables transplanted
  onto the tier (one node's evidence);
* ``superpeer-rules`` — community rule tables (~20–50 leaves'
  evidence) plus neighbor digest exchange;
* ``hybrid`` — super-peer rules plus the Kademlia-style category
  directory before flooding.

The claim under test is the ISSUE's acceptance gate, scaled down to
the experiment harness (the 10k+-node run lives in
``benchmarks/bench_hier.py``): super-peer rules strictly reduce
traffic per query at equal or better success, and community evidence
widens coverage α over per-node evidence.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_SEED, current_scale
from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow
from repro.metrics.traffic import TrafficStats
from repro.network.hier import HIER_MODES, HierConfig, HierNetwork
from repro.network.superpeer import SuperPeerConfig, SuperPeerNetwork

__all__ = ["hier_arm_stats", "run_hier"]


def _substrate_kwargs(n_superpeers: int) -> dict:
    return dict(
        n_superpeers=n_superpeers,
        leaves_per_superpeer=20,
        superpeer_degree=4,
        n_categories=40,
        files_per_category=250,
        library_size=60,
        interests_per_peer=4,
        superpeer_ttl=4,
    )


def hier_arm_stats(
    *,
    n_superpeers: int,
    n_queries: int,
    warmup: int,
    seed: int = DEFAULT_SEED,
    substrate: dict | None = None,
    hier_kwargs: dict | None = None,
) -> dict[str, tuple[TrafficStats, int]]:
    """Run all five arms on one workload: arm -> (stats, control msgs).

    Shared by the registered experiment (harness scale) and
    ``benchmarks/bench_hier.py`` (10k+ nodes), so both gate the same
    computation.  ``hier_kwargs`` tunes the rule/keyspace tier
    (``rule_top_k``, ``digest_every``, ...) without touching the
    substrate the baseline shares.
    """
    base = substrate or _substrate_kwargs(n_superpeers)
    tier = hier_kwargs or {}
    arms: dict[str, tuple[TrafficStats, int]] = {}
    baseline = SuperPeerNetwork(SuperPeerConfig(**base), seed=seed)
    arms["baseline"] = (baseline.run_workload(n_queries, warmup=warmup), 0)
    for mode in HIER_MODES:
        net = HierNetwork(HierConfig(mode=mode, **base, **tier), seed=seed)
        arms[mode] = (net.run_workload(n_queries, warmup=warmup), net.control_messages)
    return arms


def amortized_messages_per_query(
    stats: TrafficStats, control_messages: int
) -> float:
    """Query traffic plus the arm's digest/directory overhead, per query."""
    if not stats.n_queries:
        return 0.0
    return (stats.total_messages + control_messages) / stats.n_queries


def run_hier(*, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Flood vs per-node rules vs super-peer rules vs hybrid."""
    scale = current_scale()
    n_superpeers = max(12, scale.overlay_nodes // 20)
    n_queries = max(scale.overlay_queries, 10 * n_superpeers)
    warmup = scale.overlay_warmup
    arms = hier_arm_stats(
        n_superpeers=n_superpeers, n_queries=n_queries, warmup=warmup, seed=seed
    )
    baseline, _ = arms["baseline"]
    flood, _ = arms["flood"]
    leaf, leaf_ctrl = arms["leaf-rules"]
    sp, sp_ctrl = arms["superpeer-rules"]
    hybrid, hybrid_ctrl = arms["hybrid"]
    sp_amortized = amortized_messages_per_query(sp, sp_ctrl)

    rows = [
        ComparisonRow(
            "seed baseline msgs/query (tier-2 flooding)",
            "-",
            baseline.messages_per_query,
        ),
        ComparisonRow(
            "flood-mode identity check (HierNetwork == seed baseline)",
            "0",
            abs(flood.messages_per_query - baseline.messages_per_query)
            + abs(flood.success_rate - baseline.success_rate),
            band=(0.0, 0.0),
        ),
        ComparisonRow(
            "per-node (leaf) rules msgs/query",
            "-",
            amortized_messages_per_query(leaf, leaf_ctrl),
        ),
        ComparisonRow(
            "super-peer rules msgs/query (incl. digest traffic)",
            "-",
            sp_amortized,
        ),
        ComparisonRow(
            "hybrid msgs/query (incl. digest + directory traffic)",
            "-",
            amortized_messages_per_query(hybrid, hybrid_ctrl),
        ),
        ComparisonRow(
            "super-peer rules vs baseline traffic ratio",
            "<1 (strict domination)",
            sp_amortized / baseline.messages_per_query,
            band=(0.0, 0.97),
        ),
        ComparisonRow(
            "super-peer rules success vs baseline",
            "~equal or better",
            sp.success_rate - baseline.success_rate,
            band=(-0.01, 1.0),
        ),
        ComparisonRow(
            "community evidence widens coverage (alpha_sp - alpha_leaf)",
            ">0",
            sp.coverage_alpha - leaf.coverage_alpha,
            band=(0.0, 1.0),
        ),
        ComparisonRow(
            "super-peer rule success rho",
            "-",
            sp.success_rho,
        ),
    ]
    arm_order = ["baseline", "flood", "leaf-rules", "superpeer-rules", "hybrid"]
    series = {
        "success": [arms[a][0].success_rate for a in arm_order],
        "alpha": [arms[a][0].coverage_alpha for a in arm_order],
        "rho": [arms[a][0].success_rho for a in arm_order],
    }
    extras = {
        "arms": arm_order,
        "n_superpeers": n_superpeers,
        "n_leaves": n_superpeers * 20,
        "n_queries": n_queries,
        "warmup": warmup,
        "control_messages": {
            "leaf-rules": leaf_ctrl,
            "superpeer-rules": sp_ctrl,
            "hybrid": hybrid_ctrl,
        },
        "messages_per_query": {
            a: arms[a][0].messages_per_query for a in arm_order
        },
    }
    return ExperimentResult(
        experiment_id="hier",
        title="Two-tier super-peer rule routing vs flooding (ISSUE 10)",
        rows=rows,
        series=series,
        extras=extras,
    )
