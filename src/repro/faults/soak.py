"""Chaos soak: a live cluster battered by a fault plan, then audited.

``run_soak`` boots a :class:`~repro.live.cluster.LiveCluster` whose
nodes dial through a :class:`~repro.faults.transport.FaultController`,
warms the rule tables up with real query traffic, lets a
:class:`~repro.faults.injector.FaultInjector` execute a seeded
:class:`~repro.faults.plan.FaultPlan` while a background pump keeps
queries flowing, and then audits the survivors:

``converged``
    every overlay edge is re-established on both ends after the last
    fault (reconnect supervision actually converges);
``quiesced``
    no descriptor stays in flight once the workload stops;
``accounting``
    send queues are empty and cluster-wide ``frames_in <=
    frames_out`` *including retired node incarnations* — frames may die
    in killed sockets but can never appear from nowhere;
``probe_answers``
    a post-chaos probe workload reaches its answering nodes (routing —
    rules or flooding — still works after restarts relearn state);
``rule_state``
    every servent's connection view matches its node's live connection
    table, and rule-routed nodes still hold working streaming counts;
``metrics_agree``
    the shared :class:`~repro.obs.registry.MetricsRegistry` totals equal
    the :class:`~repro.live.stats.NodeStats` they mirror;
``reconnect_floor``
    observed reconnects reach the minimum the plan implies
    (:func:`expected_min_reconnects`);
``fault_feedback``
    injected stream corruptions show up as protocol errors;
``no_leaks``
    closing the cluster leaves no running tasks behind.

With a ``state_dir`` (durable rule state via :mod:`repro.persist`) two
more invariants join the audit:

``warm_restart``
    every crash-restarted node came back with a recovery record whose
    post-replay rule count is at least the restored snapshot's — a
    warm restart never knows *less* than the last checkpoint;
``durable_roundtrip``
    after the cluster closes, replaying each node's state directory
    offline reproduces the live counts' blake2b fingerprint exactly,
    twice (recovery is deterministic and lossless for fsynced state).

The :class:`SoakReport` separates the *deterministic* record (plan
events with applied flags, invariant verdicts) from timing-noisy
observations (counter values, rates): :meth:`SoakReport.fingerprint`
hashes only the former, so two runs of the same seed produce the same
fingerprint — the replay guarantee the CLI's ``chaos-soak`` asserts.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CORRUPT,
    CRASH,
    PARTITION,
    RESET,
    RESTART,
    TRUNCATE,
    FaultPlan,
    chaos_plan,
    crash_restart_plan,
    partition_heal_plan,
)
from repro.faults.transport import FaultController
from repro.live.cluster import (
    LiveCluster,
    harness_config,
    interest_plan,
    make_vocabulary,
)
from repro.network.topology import Topology, random_regular
from repro.utils.rng import as_generator

__all__ = [
    "PLAN_NAMES",
    "SoakReport",
    "chaos_soak",
    "expected_min_reconnects",
    "make_plan",
    "run_soak",
]

PLAN_NAMES = ("crash-restart", "partition-heal", "mixed")


@dataclass
class SoakReport:
    """Everything one soak run learned, replay-stable parts first."""

    label: str
    seed: int
    n_nodes: int
    rule_routed: bool
    #: the injector's replay log: planned events + ``applied`` flags.
    events: list[dict] = field(default_factory=list)
    #: invariant name -> verdict.
    invariants: dict[str, bool] = field(default_factory=dict)
    #: human detail for failed invariants.
    details: dict[str, str] = field(default_factory=dict)
    #: timing-noisy measurements — excluded from the fingerprint.
    observed: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.invariants) and all(self.invariants.values())

    def fingerprint(self) -> str:
        """Hash of the deterministic record (label, seed, size, events,
        verdicts).  Two runs of the same plan+seed must agree on it."""
        blob = json.dumps(
            {
                "label": self.label,
                "seed": self.seed,
                "n_nodes": self.n_nodes,
                "rule_routed": self.rule_routed,
                "events": self.events,
                "invariants": self.invariants,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def to_json(self) -> str:
        return json.dumps(
            {
                "label": self.label,
                "seed": self.seed,
                "n_nodes": self.n_nodes,
                "rule_routed": self.rule_routed,
                "fingerprint": self.fingerprint(),
                "ok": self.ok,
                "events": self.events,
                "invariants": self.invariants,
                "details": self.details,
                "observed": self.observed,
            },
            sort_keys=True,
            indent=2,
        )

    def format(self) -> str:
        lines = [
            f"chaos soak '{self.label}' "
            f"(seed {self.seed}, {self.n_nodes} nodes, "
            f"{'rule-routed' if self.rule_routed else 'flooding'})",
            f"  fingerprint {self.fingerprint()}",
            f"  {len(self.events)} fault events "
            f"({sum(1 for e in self.events if e.get('applied'))} applied)",
        ]
        for name in sorted(self.invariants):
            verdict = "ok  " if self.invariants[name] else "FAIL"
            line = f"  [{verdict}] {name}"
            if name in self.details:
                line += f" — {self.details[name]}"
            lines.append(line)
        for name in sorted(self.observed):
            lines.append(f"  observed {name} = {self.observed[name]:g}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def expected_min_reconnects(topology: Topology, plan_or_events) -> int:
    """The reconnects a plan *guarantees*: its distinct disrupted edges.

    An edge counts as disrupted when a fault severs it while its dialer
    (the lower node id, per the cluster's wiring convention) survives:

    * a crash severs every edge towards a surviving dialer-side neighbor;
    * a partition resets every cross edge;
    * reset / truncate / corrupt each kill one live link.

    The floor is the count of *distinct* such edges, not of severing
    events: a supervisor still backing off from one fault when the next
    one lands recovers both with a single re-dial, so per-event counting
    would be timing-dependent — but a disrupted edge that converged
    again reconnected at least once, whatever the interleaving.

    Accepts a :class:`~repro.faults.plan.FaultPlan` or an injector /
    churn log (dicts — entries with ``applied: False`` are skipped).
    Extra reconnects (collateral drops, repeat disruptions) are
    legitimate; fewer than the floor is a supervision bug.
    """
    events = getattr(plan_or_events, "events", plan_or_events)
    disrupted: set[tuple[int, int]] = set()
    for event in events:
        if isinstance(event, dict):
            if event.get("applied") is False:
                continue
            kind = event["kind"]
            node = event.get("node")
            link = tuple(event["link"]) if "link" in event else None
            groups = event.get("groups")
        else:
            kind, node = event.kind, event.node
            link, groups = event.link, event.groups
        if kind == CRASH:
            disrupted.update(
                (m, node) for m in topology.neighbors(node) if m < node
            )
        elif kind == PARTITION:
            a = set(groups[0])
            disrupted.update(
                (u, v) for u, v in topology.edges() if (u in a) != (v in a)
            )
        elif kind in (RESET, TRUNCATE, CORRUPT) and link is not None:
            disrupted.add((min(link), max(link)))
    return len(disrupted)


async def _pump_queries(cluster, plan, interval: float, stop: asyncio.Event):
    """Issue queries round-robin until told to stop; skips dead nodes."""
    issued = 0
    while not stop.is_set():
        node_id, term = plan[issued % len(plan)]
        issued += 1
        node = cluster.nodes[node_id]
        if not node.closed:
            try:
                node.issue_query(term)
            except Exception:
                pass  # the node died under our feet — the plan's doing
        try:
            await asyncio.wait_for(stop.wait(), timeout=interval)
        except asyncio.TimeoutError:
            continue
    return issued


async def run_soak(
    topology: Topology,
    plan: FaultPlan,
    *,
    rule_routed: bool = True,
    seed: int = 0,
    warmup_queries: int = 30,
    probe_queries: int = 20,
    pump_interval: float = 0.04,
    answer_threshold: float = 0.5,
    time_scale: float = 1.0,
    converge_timeout: float = 15.0,
    state_dir: str | None = None,
    checkpoint_interval: float = 2.0,
) -> SoakReport:
    """One full soak: boot, warm up, inject, audit.  Returns the report.

    ``state_dir`` gives every node a durable-state directory beneath
    it: crashes become hard kills recovered through snapshot + WAL
    replay, and the ``warm_restart`` / ``durable_roundtrip`` invariants
    join the audit.
    """
    report = SoakReport(
        label=plan.label,
        seed=seed,
        n_nodes=topology.n_nodes,
        rule_routed=rule_routed,
    )
    baseline_tasks = set(asyncio.all_tasks())
    controller = FaultController()
    cluster = LiveCluster(
        topology,
        rule_routed=rule_routed,
        config=harness_config(retry_jitter=0.5, retry_jitter_seed=seed),
        observe=True,
        fault_controller=controller,
        state_dir=state_dir,
        checkpoint_interval=checkpoint_interval,
    )
    rng = as_generator(seed)
    vocabulary = make_vocabulary(2 * topology.n_nodes)
    cluster.stock_partitioned_library(vocabulary)
    invariants = report.invariants
    details = report.details

    await cluster.start()
    try:
        if warmup_queries:
            await cluster.run_plan(
                interest_plan(
                    topology.n_nodes, vocabulary, warmup_queries, rng
                )
            )

        injector = FaultInjector(plan, controller)
        stop = asyncio.Event()
        pump = asyncio.create_task(
            _pump_queries(
                cluster,
                interest_plan(topology.n_nodes, vocabulary, 257, rng),
                pump_interval,
                stop,
            )
        )
        try:
            await injector.run(cluster, time_scale=time_scale)
        finally:
            stop.set()
            report.observed["pump_queries"] = float(await pump)
        report.events = list(injector.log)

        # -- invariants over the survivors -------------------------------
        try:
            await cluster.wait_connected(timeout=converge_timeout)
            invariants["converged"] = True
        except TimeoutError:
            invariants["converged"] = False
            details["converged"] = (
                f"overlay not fully re-wired within {converge_timeout}s"
            )
        invariants["quiesced"] = await cluster.quiesce(timeout=10.0)
        if not invariants["quiesced"]:
            details["quiesced"] = "descriptors still in flight after chaos"

        probe = await cluster.run_plan(
            interest_plan(topology.n_nodes, vocabulary, probe_queries, rng)
        )
        invariants["probe_answers"] = probe["answer_rate"] >= answer_threshold
        if not invariants["probe_answers"]:
            details["probe_answers"] = (
                f"answer rate {probe['answer_rate']:.2f} "
                f"< {answer_threshold:.2f}"
            )

        pending = sum(node.pending_frames for node in cluster.nodes)
        grand = cluster.grand_totals()
        invariants["accounting"] = (
            pending == 0 and grand["frames_in"] <= grand["frames_out"]
        )
        if not invariants["accounting"]:
            details["accounting"] = (
                f"pending={pending}, frames_in={grand['frames_in']}, "
                f"frames_out={grand['frames_out']}"
            )

        rule_problems = []
        for node in cluster.nodes:
            if set(node.servent.connections) != node.connected_peers:
                rule_problems.append(
                    f"node {node.node_id}: servent sees "
                    f"{sorted(node.servent.connections)}, link table has "
                    f"{sorted(node.connected_peers)}"
                )
            counts = getattr(node.servent, "counts", None)
            if rule_routed and (counts is None or counts.n_rules() < 0):
                rule_problems.append(
                    f"node {node.node_id}: streaming counts missing"
                )
        invariants["rule_state"] = not rule_problems
        if rule_problems:
            details["rule_state"] = "; ".join(rule_problems)

        for node in cluster.nodes:
            node.sync_metrics()
        registry = cluster.registry
        totals = cluster.totals()
        mismatches = []
        for metric, value in (
            ("repro_frames_total", totals["frames_in"] + totals["frames_out"]),
            ("repro_reconnects_total", totals["reconnects"]),
            ("repro_protocol_errors_total", totals["protocol_errors"]),
            ("repro_frames_dropped_total", totals["frames_dropped"]),
        ):
            if registry.total(metric) != float(value):
                mismatches.append(
                    f"{metric}={registry.total(metric):g} vs stats {value}"
                )
        invariants["metrics_agree"] = not mismatches
        if mismatches:
            details["metrics_agree"] = "; ".join(mismatches)

        floor = expected_min_reconnects(topology, injector.log)
        corruptions = sum(
            1
            for entry in injector.log
            if entry["kind"] == CORRUPT and entry.get("applied")
        )
        invariants["reconnect_floor"] = grand["reconnects"] >= floor
        if not invariants["reconnect_floor"]:
            details["reconnect_floor"] = (
                f"saw {grand['reconnects']} reconnects, plan implies "
                f">= {floor}"
            )
        invariants["fault_feedback"] = grand["protocol_errors"] >= corruptions
        if not invariants["fault_feedback"]:
            details["fault_feedback"] = (
                f"{corruptions} corruptions injected but only "
                f"{grand['protocol_errors']} protocol errors surfaced"
            )

        final_fingerprints: dict[int, str] = {}
        if state_dir is not None:
            from repro.persist import fingerprint_counts

            problems = []
            restarted = sorted(
                {
                    entry["node"]
                    for entry in report.events
                    if entry["kind"] in (RESTART, "final-restart")
                }
            )
            recovered_rules = 0
            for node_id in restarted:
                recovery = cluster.nodes[node_id].recovery
                if recovery is None:
                    problems.append(
                        f"node {node_id}: restarted without recovery info"
                    )
                    continue
                recovered_rules += recovery.n_rules
                if recovery.n_rules < recovery.snapshot_rules:
                    problems.append(
                        f"node {node_id}: recovered {recovery.n_rules} "
                        f"rules < snapshot's {recovery.snapshot_rules}"
                    )
            invariants["warm_restart"] = not problems
            if problems:
                details["warm_restart"] = "; ".join(problems)
            report.observed["restarted_nodes"] = float(len(restarted))
            report.observed["recovered_rules"] = float(recovered_rules)
            report.observed["checkpoints"] = registry.total(
                "repro_persist_checkpoints_total"
            )
            report.observed["wal_records"] = registry.total(
                "repro_persist_wal_records_total"
            )
            # quiesced above: no pair can land between here and close.
            final_fingerprints = {
                node.node_id: fingerprint_counts(node.servent.counts)
                for node in cluster.nodes
            }

        report.observed.update(
            {
                "answer_rate": probe["answer_rate"],
                "reconnects": float(grand["reconnects"]),
                "expected_min_reconnects": float(floor),
                "protocol_errors": float(grand["protocol_errors"]),
                "corruptions_applied": float(corruptions),
                "frames_in": float(grand["frames_in"]),
                "frames_out": float(grand["frames_out"]),
                "frames_dropped": float(grand["frames_dropped"]),
                "queries_issued": float(grand["queries_issued"]),
                "drain_stalls": registry.total("repro_drain_stalls_total"),
            }
        )
    finally:
        await cluster.close()

    if state_dir is not None and final_fingerprints:
        from repro.core.streaming import StreamingRules
        from repro.persist import PersistentState

        # Same rule config the cluster's nodes ran (harness defaults).
        rules_template = StreamingRules(min_support_count=2, window_pairs=512)
        mismatches = []
        for node in cluster.nodes:
            node_dir = cluster.node_state_dir(node.node_id)
            if not os.path.isdir(node_dir):
                mismatches.append(f"node {node.node_id}: state dir missing")
                continue
            fingerprints = []
            for _ in range(2):
                persist = PersistentState(node_dir, fsync="never")
                _counts, info = persist.recover(rules_template)
                persist.close()
                fingerprints.append(info.fingerprint)
            if fingerprints[0] != fingerprints[1]:
                mismatches.append(
                    f"node {node.node_id}: replay fingerprint unstable "
                    f"({fingerprints[0]} then {fingerprints[1]})"
                )
            elif fingerprints[0] != final_fingerprints[node.node_id]:
                mismatches.append(
                    f"node {node.node_id}: durable state {fingerprints[0]} "
                    f"!= live counts {final_fingerprints[node.node_id]}"
                )
        invariants["durable_roundtrip"] = not mismatches
        if mismatches:
            details["durable_roundtrip"] = "; ".join(mismatches)

    await asyncio.sleep(0)  # let close callbacks finish before counting
    current = asyncio.current_task()
    leaked = [
        task
        for task in asyncio.all_tasks()
        if task is not current and task not in baseline_tasks and not task.done()
    ]
    invariants["no_leaks"] = not leaked
    if leaked:
        details["no_leaks"] = f"{len(leaked)} tasks still running after close"
    report.observed["leaked_tasks"] = float(len(leaked))
    return report


def make_plan(name: str, topology: Topology, *, seed: int = 0) -> FaultPlan:
    """One of the named soak plans, sized to ``topology``."""
    if name == "crash-restart":
        return crash_restart_plan(topology.n_nodes, seed=seed, crashes=2)
    if name == "partition-heal":
        return partition_heal_plan(topology.n_nodes, seed=seed)
    if name == "mixed":
        return chaos_plan(topology.n_nodes, topology.edges(), seed=seed)
    raise ValueError(f"unknown plan {name!r}; pick from {PLAN_NAMES}")


def chaos_soak(
    plan_name: str = "mixed",
    *,
    n_nodes: int = 8,
    degree: int = 3,
    seed: int = 0,
    rule_routed: bool = True,
    warmup_queries: int = 30,
    probe_queries: int = 20,
    time_scale: float = 1.0,
    state_dir: str | None = None,
) -> SoakReport:
    """Synchronous entry: build topology + plan from a seed, run once."""
    topology = random_regular(n_nodes, degree, rng=as_generator(seed))
    plan = make_plan(plan_name, topology, seed=seed)
    return asyncio.run(
        run_soak(
            topology,
            plan,
            rule_routed=rule_routed,
            seed=seed,
            warmup_queries=warmup_queries,
            probe_queries=probe_queries,
            time_scale=time_scale,
            state_dir=state_dir,
        )
    )
