"""Bench `fig1`: Sliding Window coverage & success over time.

Paper Fig. 1: average coverage > 0.80, average success ≈ 0.79.
"""

import numpy as np

from benchmarks.conftest import run_and_report


def test_fig1_sliding_window(benchmark):
    result = run_and_report(benchmark, "fig1")
    coverage = np.asarray(result.series["coverage"])
    success = np.asarray(result.series["success"])
    # Fig. 1's visual claim: both series hover in a stable band, no decay.
    assert coverage.std() < 0.08
    assert success.std() < 0.08
    first_half = success[: len(success) // 2].mean()
    second_half = success[len(success) // 2 :].mean()
    assert abs(first_half - second_half) < 0.08  # stationary over time
