"""Small argument-validation helpers shared across the package.

These keep public constructors terse while producing consistent error
messages — important for a library surface with many numeric knobs.
"""

from __future__ import annotations

__all__ = ["check_positive", "check_non_negative", "check_probability", "check_fraction"]


def check_positive(name: str, value) -> float:
    """Return ``value`` as float, requiring it to be > 0."""
    v = float(value)
    if not v > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return v


def check_non_negative(name: str, value) -> float:
    """Return ``value`` as float, requiring it to be >= 0."""
    v = float(value)
    if v < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return v


def check_probability(name: str, value) -> float:
    """Return ``value`` as float, requiring 0 <= value <= 1."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return v


def check_fraction(name: str, value) -> float:
    """Return ``value`` as float, requiring 0 < value < 1."""
    v = float(value)
    if not 0.0 < v < 1.0:
        raise ValueError(f"{name} must be a fraction in (0, 1), got {value!r}")
    return v
