"""Streaming frequency estimation (Manku–Motwani lossy counting).

The paper's future-work section describes an algorithm that updates routing
rules *immediately* as query and reply messages arrive, citing the
data-stream literature (their ref [18]).  :class:`LossyCounter` implements
the classic lossy-counting sketch: it maintains approximate counts of items
in a stream using bounded memory, guaranteeing that

* every item whose true count exceeds ``epsilon * N`` is retained, and
* each retained estimate undercounts the truth by at most ``epsilon * N``,

where ``N`` is the stream length so far.  :class:`StreamingPairCounter`
specializes it to (query-source, reply-source) pairs for the streaming
routing strategy.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

from repro.utils.validation import check_fraction

__all__ = ["LossyCounter", "StreamingPairCounter"]


class LossyCounter:
    """Approximate stream frequency counts with the lossy-counting bound."""

    def __init__(self, epsilon: float = 0.001) -> None:
        self.epsilon = check_fraction("epsilon", epsilon)
        self.bucket_width = math.ceil(1.0 / self.epsilon)
        self.n_seen = 0
        self._current_bucket = 1
        # item -> (count, max undercount Delta at insertion time)
        self._entries: dict[Hashable, tuple[int, int]] = {}

    def push(self, item: Hashable) -> None:
        """Observe one stream element."""
        self.n_seen += 1
        entry = self._entries.get(item)
        if entry is None:
            self._entries[item] = (1, self._current_bucket - 1)
        else:
            count, delta = entry
            self._entries[item] = (count + 1, delta)
        if self.n_seen % self.bucket_width == 0:
            self._compress()
            self._current_bucket += 1

    def extend(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.push(item)

    def _compress(self) -> None:
        bucket = self._current_bucket
        doomed = [
            item
            for item, (count, delta) in self._entries.items()
            if count + delta <= bucket
        ]
        for item in doomed:
            del self._entries[item]

    def estimate(self, item: Hashable) -> int:
        """Lower-bound estimate of the item's true count (0 if evicted)."""
        entry = self._entries.get(item)
        return entry[0] if entry else 0

    def items_over(self, threshold: float) -> dict[Hashable, int]:
        """Items whose *true* count may exceed ``threshold * n_seen``.

        Standard lossy-counting output rule: report entries with
        ``count >= (threshold - epsilon) * N``.  Guaranteed to include every
        item with true frequency >= ``threshold`` (no false negatives).
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        floor = (threshold - self.epsilon) * self.n_seen
        return {
            item: count
            for item, (count, _delta) in self._entries.items()
            if count >= floor
        }

    def __len__(self) -> int:
        """Number of tracked entries (bounded by O(log(eps*N)/eps))."""
        return len(self._entries)


class StreamingPairCounter:
    """Lossy counts over (source, replier) pairs, plus per-source views.

    The streaming routing strategy asks, for each query-source neighbor,
    which reply-source neighbors currently co-occur with it most often;
    this class answers that from the sketch without a second pass.
    """

    def __init__(self, epsilon: float = 0.001) -> None:
        self._counter = LossyCounter(epsilon)

    @property
    def n_seen(self) -> int:
        return self._counter.n_seen

    def push(self, source: Hashable, replier: Hashable) -> None:
        self._counter.push((source, replier))

    def estimate(self, source: Hashable, replier: Hashable) -> int:
        return self._counter.estimate((source, replier))

    def top_repliers(self, source: Hashable, k: int = 1) -> list[tuple[Hashable, int]]:
        """The k repliers with the largest estimated counts for ``source``."""
        if k < 1:
            raise ValueError("k must be >= 1")
        matches = [
            (pair[1], count)
            for pair, (count, _delta) in self._counter._entries.items()
            if pair[0] == source
        ]
        matches.sort(key=lambda rc: (-rc[1], str(rc[0])))
        return matches[:k]

    def pairs_over_count(self, min_count: int) -> dict[tuple, int]:
        """All tracked pairs with estimated count >= ``min_count``."""
        return {
            pair: count
            for pair, (count, _delta) in self._counter._entries.items()
            if count >= min_count
        }

    def __len__(self) -> int:
        return len(self._counter)
