"""Tests for repro.routing.shortcuts."""

import pytest

from repro.network.overlay import Overlay, OverlayConfig
from repro.routing.shortcuts import InterestShortcutsPolicy

SMALL = OverlayConfig(
    n_nodes=80, degree=4, n_categories=6, files_per_category=40, library_size=25
)


def build(seed=1, capacity=10):
    overlay = Overlay(SMALL, seed=seed)
    overlay.install_policies(
        lambda nid, ov: InterestShortcutsPolicy(nid, ov, capacity=capacity)
    )
    return overlay


class TestShortcutLearning:
    def test_learns_providers_from_hits(self):
        overlay = build()
        origin = 0
        for _ in range(30):
            q = overlay.make_query(origin=origin)
            overlay.node(origin).policy.route_query(overlay.engine, q)
        policy = overlay.node(origin).policy
        # After repeated queries in its own interests, shortcuts exist.
        assert policy.shortcut_list

    def test_shortcut_probe_is_cheap_on_repeat_query(self):
        overlay = build(seed=3)
        origin = 0
        # Find a query that succeeds, then repeat it.
        for _ in range(100):
            q = overlay.make_query(origin=origin)
            if overlay.node(origin).shares(q.file_id):
                continue
            out = overlay.node(origin).policy.route_query(overlay.engine, q)
            if out.hits:
                repeat = overlay.make_query(origin=origin)
                # Re-ask for the same file through a fresh query object.
                from dataclasses import replace

                repeat = replace(repeat, file_id=q.file_id, category=q.category)
                out2 = overlay.node(origin).policy.route_query(overlay.engine, repeat)
                assert out2.hits >= 1
                assert out2.messages <= 10  # capacity-bounded probes
                assert out2.first_hit_hops == 1
                return
        pytest.skip("no successful query found to repeat")

    def test_capacity_respected(self):
        overlay = build(capacity=3)
        policy = overlay.node(0).policy
        for provider in range(10, 20):
            policy._touch(provider)
        assert len(policy.shortcut_list) == 3
        assert policy.shortcut_list == [17, 18, 19]

    def test_most_recent_last_and_probed_first(self):
        overlay = build()
        policy = overlay.node(0).policy
        policy._touch(5)
        policy._touch(6)
        policy._touch(5)
        assert policy.shortcut_list == [6, 5]

    def test_reset_clears(self):
        overlay = build()
        policy = overlay.node(0).policy
        policy._touch(5)
        policy.reset()
        assert policy.shortcut_list == []

    def test_validation(self):
        overlay = Overlay(SMALL, seed=4)
        with pytest.raises(ValueError):
            InterestShortcutsPolicy(0, overlay, capacity=0)
