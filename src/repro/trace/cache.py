"""Binary caching of generated pair arrays and trace stores.

Full-scale runs use 3.65M-pair traces; regenerating one for every
experiment wastes minutes.  :func:`save_pairs` / :func:`load_pairs`
persist :class:`~repro.workload.tracegen.PairArrays` as compressed
``.npz`` (the paper kept its 2.6 GB trace in a database for the same
reason), and :func:`cached_pairs` is the memoizing wrapper the full-scale
harness can use.  :func:`cached_trace_store` is the out-of-core twin:
it memoizes a generated trace as an on-disk ``.rptrace`` columnar store
(:mod:`repro.trace.store`) so experiment configs can point straight at a
store file and stream it with O(block) memory.

Both caches are keyed by *provenance*, not just length: the generating
``(config, seed)`` pair is hashed (:func:`trace_fingerprint`) and
stamped into the cache file — an ``npz`` side array, the store header's
metadata word.  A cache hit requires the stamp to match, so a file left
behind by an experiment with different knobs is regenerated instead of
silently reused.  Files written before stamping existed carry no
fingerprint and are treated as misses with a warning.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings

import numpy as np

from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator, PairArrays

__all__ = [
    "trace_fingerprint",
    "save_pairs",
    "load_pairs",
    "cached_pairs",
    "cached_trace_store",
    "default_trace_cache_dir",
    "store_backed_blocks",
]

_FIELDS = ("time", "source", "replier", "category", "host")

#: npz side-array holding the 64-bit provenance fingerprint.
_FINGERPRINT_KEY = "__trace_fingerprint__"


def trace_fingerprint(
    config: MonitorTraceConfig | None,
    seed: int,
    *,
    exact_n_pairs: int | None = None,
) -> int:
    """64-bit provenance hash of a trace's generating parameters.

    Defined over the config's field values (via a canonical JSON
    encoding) plus the seed, so two configs that compare equal always
    fingerprint equal, and any knob or seed change produces a different
    stamp.  ``config=None`` hashes the defaults it stands for.

    ``exact_n_pairs`` mixes the trace length into the stamp.  Chunked
    and single-shot generation of the same ``(config, seed)`` differ
    bit-wise (:meth:`MonitorTraceGenerator.generate_pair_arrays`
    pre-draws its inter-arrival gaps per call), so caches of
    exact single-shot traces must never hit on a chunk-written file of
    the same provenance — the length-mixed stamp keeps the two cache
    populations disjoint.
    """
    config = config or MonitorTraceConfig()
    payload_fields = {"config": dataclasses.asdict(config), "seed": int(seed)}
    if exact_n_pairs is not None:
        payload_fields["exact_n_pairs"] = int(exact_n_pairs)
    payload = json.dumps(payload_fields, sort_keys=True, default=repr)
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def save_pairs(
    path: str | os.PathLike, arrays: PairArrays, *, fingerprint: int | None = None
) -> None:
    """Write pair arrays as compressed npz, optionally provenance-stamped."""
    columns = {name: getattr(arrays, name) for name in _FIELDS}
    if fingerprint is not None:
        columns[_FINGERPRINT_KEY] = np.array([fingerprint], dtype=np.uint64)
    np.savez_compressed(path, **columns)


def load_pairs(path: str | os.PathLike) -> PairArrays:
    """Read pair arrays written by :func:`save_pairs`."""
    arrays, _fingerprint = _load_pairs_stamped(path)
    return arrays


def _load_pairs_stamped(path: str | os.PathLike) -> tuple[PairArrays, int | None]:
    with np.load(path) as data:
        missing = [name for name in _FIELDS if name not in data]
        if missing:
            raise ValueError(f"not a pair-array file: missing {missing}")
        fingerprint = None
        if _FINGERPRINT_KEY in data:
            fingerprint = int(data[_FINGERPRINT_KEY][0])
        return PairArrays(**{name: data[name] for name in _FIELDS}), fingerprint


def cached_pairs(
    path: str | os.PathLike,
    n_pairs: int,
    *,
    config: MonitorTraceConfig | None = None,
    seed: int = 0,
) -> PairArrays:
    """Load ``path`` if it matches, else generate, stamp, and save.

    A hit requires the cached file's provenance fingerprint to equal
    ``trace_fingerprint(config, seed)`` *and* the cached trace to be at
    least ``n_pairs`` long; a longer trace is sliced to ``n_pairs`` (the
    prefix of a trace is a valid shorter trace).  A length or
    fingerprint mismatch regenerates from scratch — the cache never
    silently hands one experiment another experiment's trace.  Files
    predating fingerprint stamping are regenerated too (miss with a
    warning), which upgrades them in place.
    """
    if n_pairs < 0:
        raise ValueError("n_pairs must be non-negative")
    path = os.fspath(path)
    expected = trace_fingerprint(config, seed)
    if os.path.exists(path):
        arrays, stamped = _load_pairs_stamped(path)
        if stamped is None:
            warnings.warn(
                f"{path}: cached trace has no provenance fingerprint "
                "(written by an older release); regenerating",
                stacklevel=2,
            )
        elif stamped == expected and len(arrays) >= n_pairs:
            return PairArrays(
                **{name: getattr(arrays, name)[:n_pairs] for name in _FIELDS}
            )
    generator = MonitorTraceGenerator(config or MonitorTraceConfig(), seed=seed)
    arrays = generator.generate_pair_arrays(n_pairs)
    save_pairs(path, arrays, fingerprint=expected)
    return arrays


def cached_trace_store(
    path: str | os.PathLike,
    n_pairs: int,
    *,
    config: MonitorTraceConfig | None = None,
    seed: int = 0,
    block_size: int | None = None,
    codec: str | None = None,
    compress_level: int = 6,
    exact: bool = False,
):
    """Open ``path`` as a trace store if it matches, else generate one.

    The out-of-core counterpart of :func:`cached_pairs`: the cache file
    is a ``.rptrace`` columnar store whose header metadata word carries
    the provenance fingerprint.  Returns an open
    :class:`~repro.trace.store.TraceStoreReader` (the caller owns its
    lifetime — use ``with``); evaluation streams it block by block
    rather than materializing arrays.

    A hit requires a matching fingerprint, a cleanly-footered store (a
    torn file is rebuilt), at least ``n_pairs`` stored pairs, and the
    requested ``block_size`` (stores cannot be cheaply re-blocked).  On
    a miss the trace is regenerated chunk-by-chunk into a fresh store
    written with ``codec`` (e.g. ``"zlib"`` for compressed cold
    segments).

    ``exact=True`` caches the *single-shot* trace instead: generation
    happens in one ``generate_pair_arrays(n_pairs)`` call (bit-identical
    to the serial in-memory path used by the figure runners, at the cost
    of materializing the arrays once at write time), a hit requires the
    store to hold *exactly* ``n_pairs`` pairs, and the provenance stamp
    mixes the length in (see :func:`trace_fingerprint`) so chunk-written
    caches of the same ``(config, seed)`` never hit.
    """
    from repro.trace.store import (
        TraceStoreError,
        TraceStoreReader,
        TraceStoreWriter,
    )

    if n_pairs < 0:
        raise ValueError("n_pairs must be non-negative")
    path = os.fspath(path)
    effective_config = config or MonitorTraceConfig()
    if block_size is None:
        block_size = effective_config.block_size
    expected = trace_fingerprint(
        config, seed, exact_n_pairs=n_pairs if exact else None
    )
    if os.path.exists(path):
        reader = None
        try:
            reader = TraceStoreReader(path)
            if reader.meta_fingerprint == 0:
                warnings.warn(
                    f"{path}: cached store has no provenance fingerprint "
                    "(written by an older release); regenerating",
                    stacklevel=2,
                )
            elif (
                reader.meta_fingerprint == expected
                and not reader.recovered
                and reader.block_size == block_size
                and (
                    reader.n_pairs == n_pairs
                    if exact
                    else reader.n_pairs >= n_pairs
                )
            ):
                return reader
        except TraceStoreError:
            pass  # not a store / torn beyond use: rebuild below
        if reader is not None:
            reader.close()
    generator = MonitorTraceGenerator(effective_config, seed=seed)
    writer = TraceStoreWriter(
        path,
        block_size=block_size,
        codec=codec,
        compress_level=compress_level,
        meta_fingerprint=expected,
    )
    try:
        if exact:
            arrays = generator.generate_pair_arrays(n_pairs)
            writer.append(arrays.source, arrays.replier)
        else:
            remaining = n_pairs
            while remaining > 0:
                chunk = min(remaining, max(block_size, 1) * 8)
                arrays = generator.generate_pair_arrays(chunk)
                writer.append(arrays.source, arrays.replier)
                remaining -= chunk
    except BaseException:
        writer.abandon()
        raise
    # Keep the partial tail block: the cache must hold every requested
    # pair, not just whole blocks.
    writer.close(drop_partial=False)
    return TraceStoreReader(path)


def default_trace_cache_dir() -> str:
    """Directory holding process-shared trace-store caches.

    ``$REPRO_TRACE_CACHE_DIR`` when set, else ``~/.cache/repro/traces``.
    """
    override = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "traces")


#: open readers backing blocks handed out by :func:`store_backed_blocks`,
#: keyed by store path.  Readers stay open for the process lifetime so
#: the zero-copy memmap views inside returned blocks remain valid, and a
#: store opened once is never re-opened (or torn down under a live view)
#: by a later call.
_OPEN_READERS: dict = {}


def store_backed_blocks(
    n_pairs: int,
    *,
    config: MonitorTraceConfig | None = None,
    seed: int = 0,
    cache_dir: str | os.PathLike | None = None,
) -> list:
    """Full blocks of the exact ``(config, seed, n_pairs)`` trace, served
    from an on-disk store cache.

    The first call for a spec generates the trace single-shot (so the
    blocks are bit-identical to the in-memory
    :func:`~repro.trace.blocks.blocks_from_arrays` path) and writes it
    as a raw v1 store under ``cache_dir`` (default:
    :func:`default_trace_cache_dir`); every later call — including in
    other processes — streams it back as zero-copy memmap views.  Only
    whole blocks are returned, matching ``blocks_from_arrays``'s
    ``drop_partial`` default.  The backing reader is kept open in a
    module registry so returned views stay valid for the process
    lifetime.
    """
    if n_pairs < 0:
        raise ValueError("n_pairs must be non-negative")
    effective_config = config or MonitorTraceConfig()
    directory = (
        os.fspath(cache_dir) if cache_dir is not None else default_trace_cache_dir()
    )
    stamp = trace_fingerprint(config, seed, exact_n_pairs=n_pairs)
    path = os.path.join(directory, f"trace-{stamp:016x}.rptrace")
    reader = _OPEN_READERS.get(path)
    if reader is None:
        os.makedirs(directory, exist_ok=True)
        reader = cached_trace_store(
            path,
            n_pairs,
            config=config,
            seed=seed,
            block_size=effective_config.block_size,
            exact=True,
        )
        _OPEN_READERS[path] = reader
    n_full = n_pairs // effective_config.block_size
    return [reader.block(i) for i in range(n_full)]
