"""Rule-set persistence.

The paper's simulator kept the current rule set in a database table with
three values per entry: query source, replying neighbor, and use count.
This module persists :class:`~repro.core.rules.RuleSet` objects in the
same tabular shape — a TSV with header — so mined rules can be shipped
between processes, diffed across blocks, or inspected by hand.
"""

from __future__ import annotations

import os

from repro.core.rules import Rule, RuleSet
from repro.store.table import Column, Table

__all__ = ["write_ruleset", "read_ruleset", "ruleset_to_table", "table_to_ruleset"]

_HEADER = "antecedent\tconsequent\tcount"

RULESET_COLUMNS = (
    Column("antecedent", int),
    Column("consequent", int),
    Column("count", int),
)


def write_ruleset(path: str | os.PathLike, ruleset: RuleSet) -> int:
    """Write a rule set as TSV; returns the number of rules written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_HEADER + "\n")
        for rule in ruleset:
            fh.write(f"{rule.antecedent}\t{rule.consequent}\t{rule.count}\n")
            n += 1
    return n


def read_ruleset(path: str | os.PathLike) -> RuleSet:
    """Read a rule set written by :func:`write_ruleset`."""
    rules = []
    with open(path, encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n")
        if header != _HEADER:
            raise ValueError(f"not a rule-set file: header {header!r}")
        for line in fh:
            ante, cons, count = line.rstrip("\n").split("\t")
            rules.append(Rule(int(ante), int(cons), int(count)))
    return RuleSet(rules)


def ruleset_to_table(ruleset: RuleSet, name: str = "ruleset") -> Table:
    """Materialize a rule set as a store table (the paper's DB shape)."""
    table = Table(name, RULESET_COLUMNS)
    for rule in ruleset:
        table.append((rule.antecedent, rule.consequent, rule.count))
    return table


def table_to_ruleset(table: Table) -> RuleSet:
    """Rebuild a rule set from its table form."""
    return RuleSet(
        Rule(ante, cons, count)
        for ante, cons, count in zip(
            table.column("antecedent"),
            table.column("consequent"),
            table.column("count"),
        )
    )
