"""Networks of byte-level servents over arbitrary topologies.

:class:`WireNetwork` instantiates one :class:`~repro.network.servent.Servent`
per node of a :class:`~repro.network.topology.Topology` (connection ids =
neighbor node ids), pumps frames synchronously until quiescence, and
accounts traffic — the whole reproduction stack exercised at the wire
level: keyword queries in Gnutella framing, GUID-routed hits, optional
rule-routed servents (the paper's method as deployed software) and an
optional monitor servent capturing the §IV trace.
"""

from __future__ import annotations

from repro.network.servent import (
    MonitorServent,
    RuleRoutedServent,
    Servent,
    SharedFile,
)
from repro.network.topology import Topology
from repro.utils.rng import as_generator

__all__ = ["WireNetwork"]


class WireNetwork:
    """A wired collection of servents with synchronous frame delivery."""

    def __init__(
        self,
        topology: Topology,
        *,
        rule_routed: bool = False,
        monitor_node: int | None = None,
        max_ttl: int = 7,
        rule_kwargs: dict | None = None,
    ) -> None:
        self.topology = topology
        self.monitor_node = monitor_node
        self.servents: list[Servent] = []
        for node in range(topology.n_nodes):
            guid = 100_000 + node
            if node == monitor_node:
                servent: Servent = MonitorServent(guid, max_ttl=max_ttl)
            elif rule_routed:
                servent = RuleRoutedServent(
                    guid, max_ttl=max_ttl, **(rule_kwargs or {})
                )
            else:
                servent = Servent(guid, max_ttl=max_ttl)
            self.servents.append(servent)
        for u, v in topology.edges():
            self.servents[u].connect(v)
            self.servents[v].connect(u)
        self.frames_delivered = 0

    @property
    def monitor(self) -> MonitorServent | None:
        if self.monitor_node is None:
            return None
        servent = self.servents[self.monitor_node]
        assert isinstance(servent, MonitorServent)
        return servent

    # ------------------------------------------------------------------
    def stock_libraries(self, catalog_files: dict[int, list[SharedFile]]) -> None:
        """Assign shared files per node id."""
        for node, files in catalog_files.items():
            self.servents[node].library = list(files)

    def stock_random_libraries(
        self,
        rng,
        *,
        vocabulary: list[str],
        files_per_node: int = 4,
        terms_per_file: int = 2,
    ) -> None:
        """Give every node random keyword-titled files."""
        rng = as_generator(rng)
        for node, servent in enumerate(self.servents):
            files = []
            for i in range(files_per_node):
                terms = [
                    vocabulary[int(rng.integers(0, len(vocabulary)))]
                    for _ in range(terms_per_file)
                ]
                files.append(
                    SharedFile(
                        index=i,
                        name=" ".join(terms) + f" track{i}.mp3",
                        size=1 << 20,
                    )
                )
            servent.library = files

    # ------------------------------------------------------------------
    def pump(self, frames: list[tuple[int, bytes]], sender: int) -> int:
        """Deliver frames (breadth-first) until the network is quiescent."""
        delivered = 0
        queue = [(sender, conn, frame) for conn, frame in frames]
        while queue:
            src, dst, frame = queue.pop(0)
            delivered += 1
            for conn, out in self.servents[dst].handle_frame(src, frame):
                queue.append((dst, conn, out))
        self.frames_delivered += delivered
        return delivered

    def query_from(self, node: int, search: str) -> tuple[int, int]:
        """Issue a query at ``node``; returns (hits received, frames used)."""
        before = len(self.servents[node].results)
        _guid, frames = self.servents[node].issue_query(search)
        used = self.pump(frames, node)
        return len(self.servents[node].results) - before, used

    def run_workload(
        self, rng, *, vocabulary: list[str], n_queries: int
    ) -> dict[str, float]:
        """Random single-term queries from random nodes; summary stats."""
        rng = as_generator(rng)
        hits = 0
        frames = 0
        answered = 0
        for _ in range(n_queries):
            node = int(rng.integers(0, self.topology.n_nodes))
            term = vocabulary[int(rng.integers(0, len(vocabulary)))]
            n_hits, used = self.query_from(node, term)
            hits += n_hits
            frames += used
            if n_hits:
                answered += 1
        return {
            "n_queries": float(n_queries),
            "answer_rate": answered / n_queries if n_queries else 0.0,
            "frames_per_query": frames / n_queries if n_queries else 0.0,
            "hits_per_query": hits / n_queries if n_queries else 0.0,
        }
