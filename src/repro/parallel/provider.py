"""Process-wide trace providers for the experiment layer.

Every trace-driven runner in :mod:`repro.experiments.figures` regenerates
its synthetic trace from scratch — at default scale that is ~2 s per
experiment for byte-identical arrays (same config, seed and length).  A
*trace provider*, when installed, serves those arrays instead:

* :class:`CachingTraceProvider` — in-process memo; used by the engine's
  serial mode and by the parent process before fanning out.
* :class:`SharedMemoryTraceProvider` — worker-side; serves arrays as
  zero-copy views of the parent's shared-memory segments
  (:mod:`repro.parallel.shm`) and falls back to local generation (with
  memoization) for specs the parent did not pre-generate.

Trace equality is keyed by the exact spec ``(config, seed, n_pairs)``.
``n_pairs`` is part of the key because
:meth:`MonitorTraceGenerator.generate_pair_arrays` pre-draws its
inter-arrival gaps, so a longer trace is *not* a bit-identical superset
of a shorter one — slicing a prefix would silently change results versus
the serial path.

With no provider installed, :func:`provide_pair_columns` generates
directly — the status-quo serial path.
"""

from __future__ import annotations

import numpy as np

from repro.workload.tracegen import MonitorTraceConfig, MonitorTraceGenerator

__all__ = [
    "CachingTraceProvider",
    "SharedMemoryTraceProvider",
    "clear_trace_provider",
    "current_trace_provider",
    "install_trace_provider",
    "provide_pair_columns",
    "trace_key",
]


def trace_key(config: MonitorTraceConfig, seed: int, n_pairs: int) -> tuple:
    """Hashable identity of one generated trace.

    ``MonitorTraceConfig`` is a frozen dataclass of scalars, so its repr
    is a complete, deterministic fingerprint of the generative model.
    """
    return (repr(config), int(seed), int(n_pairs))


def _generate_columns(
    config: MonitorTraceConfig, seed: int, n_pairs: int
) -> tuple[np.ndarray, np.ndarray]:
    arrays = MonitorTraceGenerator(config, seed=seed).generate_pair_arrays(n_pairs)
    return arrays.source, arrays.replier


class CachingTraceProvider:
    """In-process memo of generated (source, replier) columns."""

    def __init__(self) -> None:
        self._traces: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def pair_columns(
        self, config: MonitorTraceConfig, seed: int, n_pairs: int
    ) -> tuple[np.ndarray, np.ndarray]:
        key = trace_key(config, seed, n_pairs)
        cached = self._traces.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        columns = _generate_columns(config, seed, n_pairs)
        self._traces[key] = columns
        return columns

    def warm(
        self, config: MonitorTraceConfig, seed: int, n_pairs: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate (or reuse) one spec ahead of time."""
        return self.pair_columns(config, seed, n_pairs)


class SharedMemoryTraceProvider:
    """Worker-side provider backed by the parent's shared segments."""

    def __init__(self, attached) -> None:
        self._attached = attached  # AttachedTraceStore
        self._local = CachingTraceProvider()
        self.shared_hits = 0

    def pair_columns(
        self, config: MonitorTraceConfig, seed: int, n_pairs: int
    ) -> tuple[np.ndarray, np.ndarray]:
        key = trace_key(config, seed, n_pairs)
        if key in self._attached:
            self.shared_hits += 1
            return self._attached.arrays(key)
        return self._local.pair_columns(config, seed, n_pairs)


#: process-wide active provider (None = generate directly, serial path).
_ACTIVE = None


def install_trace_provider(provider) -> None:
    global _ACTIVE
    _ACTIVE = provider


def clear_trace_provider() -> None:
    global _ACTIVE
    _ACTIVE = None


def current_trace_provider():
    return _ACTIVE


def provide_pair_columns(
    config: MonitorTraceConfig, seed: int, n_pairs: int
) -> tuple[np.ndarray, np.ndarray]:
    """(source, replier) columns for one trace spec.

    Served by the installed provider when there is one, generated
    directly otherwise.  Either way the arrays are bit-identical — the
    provider only removes redundant regeneration.
    """
    provider = _ACTIVE
    if provider is not None:
        return provider.pair_columns(config, seed, n_pairs)
    return _generate_columns(config, seed, n_pairs)
