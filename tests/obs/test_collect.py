"""Tests for cluster-wide trace collection and quality rollups."""

import json

import pytest

from repro.obs.collect import (
    ClusterTraceCollector,
    format_cluster_rollup,
    format_trace_tree,
    merge_spans,
    parse_spans,
    quality_measures,
)


def _span(guid, ts, node, kind, **fields):
    return {"guid": guid, "ts": ts, "node": node, "kind": kind, **fields}


class TestMergeSpans:
    def test_cross_node_events_merge_by_guid_in_time_order(self):
        docs = [
            _span(8, 10.2, 1, "received", peer=0, ttl=6),
            _span(8, 10.0, 0, "issued", ttl=7),
            _span(9, 11.0, 1, "issued"),
            _span(8, 10.4, 1, "hit"),
        ]
        traces = merge_spans(docs)
        assert sorted(traces) == [8, 9]
        assert traces[8].kinds() == ["issued", "received", "hit"]
        assert traces[8].events[0].node == 0
        assert traces[8].hops == 2

    def test_parse_spans_skips_blank_lines(self):
        text = (
            json.dumps(_span(1, 0.0, 0, "issued")) + "\n\n"
            + json.dumps(_span(1, 0.1, 1, "received", peer=0)) + "\n"
        )
        assert len(parse_spans(text)) == 2
        assert parse_spans("") == []

    def test_stable_order_within_one_clock_tick(self):
        docs = [
            _span(5, 1.0, 0, "issued"),
            _span(5, 1.0, 0, "rule_routed", peer=1),
        ]
        assert merge_spans(docs)[5].kinds() == ["issued", "rule_routed"]


class TestQualityMeasures:
    def test_alpha_rho_traffic(self):
        measures = quality_measures(
            {"rule": 30.0, "flood": 10.0, "issued": 20.0,
             "hits": 15.0, "frames_out": 120.0}
        )
        assert measures["alpha"] == pytest.approx(0.75)
        assert measures["rho"] == pytest.approx(0.75)
        assert measures["traffic_per_query"] == pytest.approx(6.0)

    def test_zero_denominators(self):
        measures = quality_measures(
            {"rule": 0.0, "flood": 0.0, "issued": 0.0,
             "hits": 0.0, "frames_out": 0.0}
        )
        assert measures == {
            "alpha": 0.0, "rho": 0.0, "traffic_per_query": 0.0
        }


def _fake_cluster(metrics_by_node):
    """A fetch hook serving canned /trace + /metrics for two nodes."""
    spans = {
        "n0": (
            json.dumps(_span(4, 10.0, 0, "issued", info="jazz", ttl=7))
            + "\n"
            + json.dumps(
                _span(4, 10.1, 0, "rule_routed", peer=1, ttl=6,
                      antecedent=-1, consequent=1,
                      confidence=0.8, support=4)
            )
            + "\n"
            + json.dumps(_span(4, 10.5, 0, "delivered", peer=1))
            + "\n"
        ),
        "n1": (
            json.dumps(_span(4, 10.2, 1, "received", peer=0, ttl=6))
            + "\n"
            + json.dumps(_span(4, 10.3, 1, "hit", info="jazz"))
            + "\n"
        ),
    }

    def fetch(url):
        base, _, endpoint = url.rpartition("/")
        label = "n0" if "9000" in base else "n1"
        if endpoint == "trace":
            return spans[label]
        return metrics_by_node[label]

    return fetch


def _metrics(rule, flood, issued, hits, frames_out):
    return (
        f'repro_routing_decisions_total{{decision="rule"}} {rule}\n'
        f'repro_routing_decisions_total{{decision="flood"}} {flood}\n'
        f"repro_queries_issued_total {issued}\n"
        f"repro_hits_received_total {hits}\n"
        f'repro_frames_total{{direction="out"}} {frames_out}\n'
        f'repro_frames_total{{direction="in"}} {frames_out}\n'
    )


class TestCollector:
    ENDPOINTS = [(0, "http://127.0.0.1:9000"), (1, "http://127.0.0.1:9001")]

    def test_poll_merges_spans_and_counters(self):
        fetch = _fake_cluster(
            {"n0": _metrics(3, 1, 4, 2, 20), "n1": _metrics(1, 1, 0, 0, 10)}
        )
        collector = ClusterTraceCollector(self.ENDPOINTS, fetch=fetch)
        summary = collector.poll()
        assert summary["nodes"] == 2
        assert summary["traces"] == 1
        trace = collector.traces[4]
        assert trace.kinds() == [
            "issued", "rule_routed", "received", "hit", "delivered"
        ]
        assert trace.events[1].confidence == pytest.approx(0.8)
        assert trace.answered
        assert collector.cluster["issued"] == 4.0
        assert collector.live_quality()["alpha"] == pytest.approx(4 / 6)
        assert collector.best_guid() == 4
        assert collector.answered_guids() == [4]

    def test_rolling_windows_are_poll_deltas(self):
        calls = {"n": 0}
        clock_value = {"now": 100.0}

        def fetch(url):
            if url.endswith("/trace"):
                return ""
            # second poll: counters advanced on node 0 only
            if calls["n"] >= 2 and "9000" in url:
                return _metrics(8, 2, 10, 9, 50)
            if "9000" in url:
                calls["n"] += 1
                return _metrics(3, 1, 4, 2, 20)
            calls["n"] += 1
            return _metrics(0, 0, 0, 0, 0)

        collector = ClusterTraceCollector(
            self.ENDPOINTS, fetch=fetch, clock=lambda: clock_value["now"]
        )
        collector.poll()
        assert not collector.windows  # first poll has no delta baseline
        clock_value["now"] = 110.0
        collector.poll()
        assert len(collector.windows) == 1
        window = collector.windows[0]
        assert window["seconds"] == pytest.approx(10.0)
        assert window["issued"] == pytest.approx(6.0)
        assert window["rule"] == pytest.approx(5.0)
        assert window["alpha"] == pytest.approx(5 / 6)
        assert window["rho"] == pytest.approx(7 / 6)

    def test_dead_node_is_skipped_not_fatal(self):
        def fetch(url):
            if "9001" in url:
                raise OSError("connection refused")
            if url.endswith("/trace"):
                return ""
            return _metrics(1, 1, 2, 1, 8)

        collector = ClusterTraceCollector(self.ENDPOINTS, fetch=fetch)
        summary = collector.poll()
        assert summary["nodes"] == 1
        assert collector.errors == 2  # /trace and /metrics both failed
        assert 0 in collector.per_node and 1 not in collector.per_node

    def test_bad_max_windows_rejected(self):
        with pytest.raises(ValueError):
            ClusterTraceCollector([], max_windows=0)


class TestRendering:
    def test_trace_tree_shows_rule_edges_and_flood_leaves(self):
        traces = merge_spans(
            [
                _span(4, 10.0, 0, "issued", info="jazz", ttl=7),
                _span(
                    4, 10.1, 0, "rule_routed", peer=1, ttl=6,
                    antecedent=-1, consequent=1,
                    confidence=0.8, support=4,
                ),
                _span(4, 10.2, 1, "received", peer=0, ttl=6),
                _span(
                    4, 10.25, 1, "flooded", peer=2, ttl=5,
                    reason="no_covering_rule",
                ),
                _span(4, 10.3, 1, "hit", info="jazz"),
                _span(4, 10.5, 0, "delivered", peer=1),
            ]
        )
        text = format_trace_tree(traces[4])
        assert "query 0x4 — answered" in text
        assert "[rule -1=>1 conf=0.80 sup=4]→ node 1" in text
        assert "[flood no_covering_rule]→ node 2 — (no events)" in text
        assert "issued[jazz] ttl=7" in text
        assert "hit[jazz]" in text

    def test_duplicate_arrival_marked_dup(self):
        traces = merge_spans(
            [
                _span(2, 0.0, 0, "issued"),
                _span(2, 0.1, 0, "flooded", peer=1),
                _span(2, 0.2, 1, "received", peer=0),
                _span(2, 0.3, 1, "flooded", peer=0),
            ]
        )
        text = format_trace_tree(traces[2])
        assert "(dup)" in text

    def test_rollup_contains_per_node_cluster_and_windows(self):
        fetch = _fake_cluster(
            {"n0": _metrics(3, 1, 4, 2, 20), "n1": _metrics(1, 1, 0, 0, 10)}
        )
        clock_value = {"now": 50.0}
        collector = ClusterTraceCollector(
            TestCollector.ENDPOINTS,
            fetch=fetch,
            clock=lambda: clock_value["now"],
        )
        collector.poll()
        clock_value["now"] = 55.0
        collector.poll()
        text = format_cluster_rollup(collector)
        assert "| 0 | 0.750 |" in text  # node 0: alpha 3/4
        assert "**cluster**" in text
        assert "Rolling windows" in text
