"""Tests for repro.core.evaluation (RULESET-TEST)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluation import (
    RulesetTestResult,
    ruleset_test,
    ruleset_test_reference,
)
from repro.core.generation import generate_ruleset
from repro.core.rules import Rule, RuleSet
from tests.conftest import make_block


class TestRulesetTestResult:
    def test_coverage_and_success(self):
        r = RulesetTestResult(n_total=10, n_covered=5, n_successful=4)
        assert r.coverage == 0.5
        assert r.success == 0.8

    def test_empty_block(self):
        r = RulesetTestResult(n_total=0, n_covered=0, n_successful=0)
        assert r.coverage == 0.0
        assert r.success == 0.0

    def test_zero_covered(self):
        r = RulesetTestResult(n_total=10, n_covered=0, n_successful=0)
        assert r.success == 0.0

    @pytest.mark.parametrize(
        "counts",
        [(10, 11, 0), (10, 5, 6), (5, 3, -1)],
    )
    def test_inconsistent_counts_rejected(self, counts):
        n, c, s = counts
        with pytest.raises(ValueError):
            RulesetTestResult(n_total=n, n_covered=c, n_successful=s)


class TestRulesetTest:
    def test_perfect_match(self):
        block = make_block([(1, 10), (1, 10), (2, 20)])
        rs = RuleSet([Rule(1, 10, 2), Rule(2, 20, 1)])
        r = ruleset_test(rs, block)
        assert r.coverage == 1.0
        assert r.success == 1.0

    def test_covered_but_wrong_consequent(self):
        block = make_block([(1, 99), (1, 99)])
        rs = RuleSet([Rule(1, 10, 5)])
        r = ruleset_test(rs, block)
        assert r.coverage == 1.0
        assert r.success == 0.0

    def test_uncovered_sources(self):
        block = make_block([(7, 10), (8, 10)])
        rs = RuleSet([Rule(1, 10, 5)])
        r = ruleset_test(rs, block)
        assert r.coverage == 0.0
        assert r.success == 0.0

    def test_mixed(self):
        block = make_block([(1, 10), (1, 11), (2, 20), (3, 30)])
        rs = RuleSet([Rule(1, 10, 5), Rule(2, 21, 3)])
        r = ruleset_test(rs, block)
        assert r.n_total == 4
        assert r.n_covered == 3  # sources 1, 1, 2
        assert r.n_successful == 1  # only (1, 10)

    def test_empty_ruleset(self):
        block = make_block([(1, 10)])
        r = ruleset_test(RuleSet.empty(), block)
        assert r.coverage == 0.0

    def test_empty_block(self):
        rs = RuleSet([Rule(1, 10, 1)])
        r = ruleset_test(rs, make_block([]))
        assert r.n_total == 0

    def test_train_on_self_is_perfect_without_pruning(self, small_block):
        rs = generate_ruleset(small_block, min_support_count=1)
        r = ruleset_test(rs, small_block)
        assert r.coverage == 1.0
        assert r.success == 1.0


pairs_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=120
)


@settings(max_examples=60, deadline=None)
@given(pairs_strategy, pairs_strategy, st.integers(1, 4))
def test_vectorized_equals_reference(train_pairs, test_pairs, min_support):
    """Property: numpy RULESET-TEST agrees with the pure-Python one."""
    rs = generate_ruleset(make_block(train_pairs), min_support_count=min_support)
    block = make_block(test_pairs)
    fast = ruleset_test(rs, block)
    slow = ruleset_test_reference(rs, block)
    assert (fast.n_total, fast.n_covered, fast.n_successful) == (
        slow.n_total,
        slow.n_covered,
        slow.n_successful,
    )


@settings(max_examples=40, deadline=None)
@given(pairs_strategy, pairs_strategy)
def test_counts_identities(train_pairs, test_pairs):
    """Property: s <= n <= N and the alpha/rho identities hold."""
    rs = generate_ruleset(make_block(train_pairs), min_support_count=1)
    r = ruleset_test(rs, make_block(test_pairs))
    assert 0 <= r.n_successful <= r.n_covered <= r.n_total
    if r.n_total:
        assert r.coverage * r.n_total == pytest.approx(r.n_covered)
    if r.n_covered:
        assert r.success * r.n_covered == pytest.approx(r.n_successful)
