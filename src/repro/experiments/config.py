"""Experiment scale control.

The paper's trace yields 365 blocks of 10,000 pairs.  Regenerating every
figure at that scale takes minutes; the default scale uses 40-60 blocks,
which is enough for every qualitative and most quantitative claims (the
figures' series are per-block, so a prefix of the full series).  Setting
``REPRO_FULL_SCALE=1`` switches to the paper's full lengths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "current_scale", "DEFAULT_SEED"]

#: seed used by all registered experiments (override per-call if needed).
DEFAULT_SEED = 20060814  # ICPP 2006 conference date


@dataclass(frozen=True)
class ExperimentScale:
    """Block counts used by the trace-driven experiments."""

    name: str
    n_blocks: int  # fig1/fig3/fig4/lazy/adaptive runs
    n_blocks_static: int  # static needs the long horizon
    n_pairs_blocksweep: int  # fig2 sweeps block size over one fixed trace
    overlay_nodes: int
    overlay_queries: int
    overlay_warmup: int


DEFAULT_SCALE = ExperimentScale(
    name="default",
    n_blocks=40,
    n_blocks_static=60,
    n_pairs_blocksweep=400_000,
    overlay_nodes=600,
    overlay_queries=400,
    overlay_warmup=1500,
)

FULL_SCALE = ExperimentScale(
    name="full",
    n_blocks=365,
    n_blocks_static=365,
    n_pairs_blocksweep=2_000_000,
    overlay_nodes=2000,
    overlay_queries=2000,
    overlay_warmup=8000,
)


def current_scale() -> ExperimentScale:
    """The active scale (``REPRO_FULL_SCALE=1`` selects the full runs)."""
    if os.environ.get("REPRO_FULL_SCALE", "").strip() in ("1", "true", "yes"):
        return FULL_SCALE
    return DEFAULT_SCALE
