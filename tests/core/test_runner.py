"""Tests for repro.core.runner."""

import math

import pytest

from repro.core.evaluation import RulesetTestResult
from repro.core.runner import StrategyRun, TrialResult, run_strategy
from repro.core.strategies import SlidingWindow
from tests.conftest import make_block


def make_trial(i, coverage_counts=(10, 8, 6), fresh=True):
    n, c, s = coverage_counts
    return TrialResult(
        block_index=i,
        result=RulesetTestResult(n_total=n, n_covered=c, n_successful=s),
        fresh_ruleset=fresh,
        ruleset_size=5,
    )


class TestStrategyRun:
    def test_series_and_averages(self):
        run = StrategyRun(
            "test",
            (make_trial(1, (10, 8, 6)), make_trial(2, (10, 4, 2))),
            n_generations=2,
        )
        assert run.coverage_series == [0.8, 0.4]
        assert run.success_series == [0.75, 0.5]
        assert run.average_coverage == pytest.approx(0.6)
        assert run.average_success == pytest.approx(0.625)

    def test_blocks_per_generation(self):
        run = StrategyRun("t", (make_trial(1), make_trial(2), make_trial(3)), 2)
        assert run.blocks_per_generation == pytest.approx(1.5)

    def test_zero_generations_is_inf(self):
        run = StrategyRun("t", (make_trial(1),), 0)
        assert math.isinf(run.blocks_per_generation)

    def test_empty_run_averages_nan(self):
        run = StrategyRun("t", (), 0)
        assert math.isnan(run.average_coverage)

    def test_summaries(self):
        run = StrategyRun("t", (make_trial(1), make_trial(2)), 1)
        assert run.coverage_summary().count == 2
        assert run.success_summary().count == 2

    def test_trial_properties(self):
        trial = make_trial(3)
        assert trial.coverage == 0.8
        assert trial.success == 0.75


class TestRunStrategy:
    def test_delegates_to_strategy(self):
        blocks = [make_block([(1, 10)] * 20, index=i) for i in range(3)]
        run = run_strategy(SlidingWindow(min_support_count=2), blocks)
        assert run.strategy_name == "sliding"
        assert run.n_trials == 2
