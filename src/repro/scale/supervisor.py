"""Multi-process sharded cluster supervision.

:class:`ClusterSupervisor` is the scale-out twin of
:class:`~repro.live.cluster.LiveCluster`: where the loopback harness
runs every servent in one asyncio loop (one core, shared GIL), the
supervisor spawns **one process per node** (``multiprocessing`` spawn
context — no inherited loop state, same code path on every platform)
and wires the overlay across them with real TCP, so N workers genuinely
occupy N cores and a saturation benchmark measures servent throughput,
not event-loop contention.

Responsibilities, mirrored from the single-process stack so operators
keep one mental model:

* **readiness handshake** — each worker reports ``("ready", ...)`` with
  its resolved data port and ``/metrics`` port before the topology is
  wired; a worker that fails to start surfaces its traceback instead of
  hanging the boot.
* **graceful vs hard kill** — :meth:`stop` sends the control-channel
  stop (final checkpoint, flushed connections: the semantics of
  :meth:`LiveServent.close`); :meth:`kill` SIGKILLs the process — the
  :mod:`repro.faults` hard-crash, leaving recovery to the WAL tail.
* **crash detection + restart policy** — a monitor thread notices
  exited workers; ``restart="on-crash"`` respawns them (bounded by
  ``max_restarts``) on their *pinned* port with their old ``state_dir``,
  so surviving peers' dial supervisors reconnect and the node
  warm-recovers its learned rules.
* **cross-process accounting** — :meth:`stats` sums control-channel
  counter snapshots (exact, includes retired incarnations:
  :meth:`grand_totals`), and :meth:`scrape_totals` aggregates the
  workers' Prometheus ``/metrics`` endpoints through
  :func:`repro.obs.scrape.scrape_totals` — the same numbers read the
  way an external monitoring stack would read them.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import replace

from repro.live.stats import NodeStats, combine_stats
from repro.obs.collect import ClusterTraceCollector
from repro.obs.flight import load_flight
from repro.obs.logging import get_logger
from repro.obs.scrape import scrape_totals
from repro.scale.worker import WorkerSpec, flight_path, worker_main

__all__ = ["ClusterSupervisor", "WorkerHandle", "partitioned_specs"]

_log = get_logger("scale.supervisor")


def partitioned_specs(
    n_workers: int,
    vocabulary: list[str],
    **overrides,
) -> list[WorkerSpec]:
    """One spec per worker with the vocabulary dealt round-robin —
    worker ``i`` uniquely shares ``vocabulary[i::n]``, the same
    partitioned-library convention as
    :meth:`LiveCluster.stock_partitioned_library`, so every query has
    exactly one answering node and routing quality stays legible."""
    return [
        WorkerSpec(
            node_id=i,
            share_terms=tuple(vocabulary[i::n_workers]),
            **overrides,
        )
        for i in range(n_workers)
    ]


class WorkerHandle:
    """One supervised worker: spec, process, control pipe, lifecycle."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn = None  # parent end of the control pipe
        self.info: dict = {}
        self.restarts = 0
        #: final counter snapshots of earlier incarnations (graceful
        #: stops report them; hard kills lose them, like a real crash).
        self.retired: list[dict[str, int]] = []
        self.stopped = False  # a stop we asked for, not a crash

    @property
    def node_id(self) -> int:
        return self.spec.node_id

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def port(self) -> int | None:
        return self.info.get("port")

    @property
    def obs_port(self) -> int | None:
        return self.info.get("obs_port")


class ClusterSupervisor:
    """Spawn, wire, watch and account for one process-per-node cluster."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        *,
        topology=None,
        restart: str = "never",
        max_restarts: int = 2,
        ready_timeout: float = 30.0,
        monitor_interval: float = 0.2,
    ) -> None:
        if restart not in ("never", "on-crash"):
            raise ValueError("restart must be 'never' or 'on-crash'")
        ids = [spec.node_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in specs")
        self.specs = list(specs)
        #: edges wired at start; ``None`` leaves wiring to the caller.
        self.topology = topology
        self.restart_policy = restart
        self.max_restarts = max_restarts
        self.ready_timeout = ready_timeout
        self._monitor_interval = monitor_interval
        self._ctx = multiprocessing.get_context("spawn")
        self.handles: dict[int, WorkerHandle] = {
            spec.node_id: WorkerHandle(spec) for spec in self.specs
        }
        self._lock = threading.RLock()
        self._monitor: threading.Thread | None = None
        self._closing = False
        #: (node_id, reason) for every unexpected worker death seen.
        self.crashes: list[tuple[int, str]] = []
        #: flight recordings harvested after hard kills and crashes,
        #: keyed by node id (most recent harvest wins).
        self.flight_reports: dict[int, dict] = {}

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "ClusterSupervisor":
        for handle in self.handles.values():
            self._spawn(handle)
        self.wait_ready()
        if self.topology is not None:
            self.wire(self.topology)
        self._monitor = threading.Thread(
            target=self._watch, name="scale-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, handle: WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(handle.spec, child_conn),
            name=f"scale-node-{handle.node_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker's end lives in the worker
        handle.process = process
        handle.conn = parent_conn
        handle.info = {}
        handle.stopped = False

    def wait_ready(self, timeout: float | None = None) -> dict[int, dict]:
        """Block until every running worker reported ready; returns the
        per-node info payloads (port, obs_port, pid, loop, recovery)."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.ready_timeout
        )
        for handle in self.handles.values():
            if handle.info or handle.process is None:
                continue
            kind, payload = self._recv(
                handle, expect=("ready",), deadline=deadline
            )
            handle.info = payload
            _log.info(
                "worker ready",
                extra={"node": handle.node_id, **{
                    k: v for k, v in payload.items() if k != "recovery"
                }},
            )
        return {h.node_id: dict(h.info) for h in self.handles.values()}

    def _recv(self, handle: WorkerHandle, *, expect, deadline: float):
        """Next control message of an expected kind from one worker.

        ``failed`` messages raise with the worker's traceback; anything
        else out of band (there is none today — commands are strictly
        request/response) raises too, keeping the channel lockstep.
        """
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"worker {handle.node_id} sent nothing in time "
                    f"(expected {expect})"
                )
            if not handle.conn.poll(min(remaining, 0.1)):
                if not handle.alive:
                    raise RuntimeError(
                        f"worker {handle.node_id} died (exit code "
                        f"{handle.process.exitcode}) before replying"
                    )
                continue
            try:
                message = handle.conn.recv()
            except EOFError as exc:
                raise RuntimeError(
                    f"worker {handle.node_id} closed its control pipe"
                ) from exc
            kind = message[0]
            if kind == "failed":
                raise RuntimeError(
                    f"worker {handle.node_id} failed:\n{message[2]}"
                )
            if kind in expect:
                return kind, message[2] if len(message) > 2 else None
            raise RuntimeError(
                f"worker {handle.node_id}: expected {expect}, got {kind!r}"
            )

    def wire(self, topology) -> None:
        """Dial every edge across processes (lower node id dials higher,
        the same convention as the loopback cluster)."""
        with self._lock:
            for u, v in topology.edges():
                self._wire_edge(u, v)

    def _wire_edge(self, u: int, v: int) -> None:
        dialer, target = (u, v) if u < v else (v, u)
        handle = self.handles[dialer]
        peer = self.handles[target]
        if handle.conn is None or peer.port is None:
            return
        handle.conn.send(("peer", peer.spec.host, peer.port, target))

    # -- control-plane commands -------------------------------------------
    def command(
        self, node_id: int, message: tuple, *, expect, timeout: float = 10.0
    ):
        """Send one request to a worker and await its typed reply."""
        with self._lock:
            handle = self.handles[node_id]
            if not handle.alive:
                raise RuntimeError(f"worker {node_id} is not running")
            handle.conn.send(message)
            _kind, payload = self._recv(
                handle, expect=expect, deadline=time.monotonic() + timeout
            )
            return payload

    def issue_query(self, node_id: int, term: str) -> int:
        """Originate a query *from* one worker (control-plane testing
        hook; real load goes through :mod:`repro.scale.loadgen`)."""
        return self.command(
            node_id, ("query", term), expect=("query_issued",)
        )

    def checkpoint(self, node_id: int) -> dict | None:
        return self.command(node_id, ("checkpoint",), expect=("checkpoint",))

    def stats(self) -> dict[int, dict]:
        """Control-channel counter snapshots of every live worker."""
        out: dict[int, dict] = {}
        with self._lock:
            for node_id, handle in sorted(self.handles.items()):
                if handle.alive:
                    out[node_id] = self.command(
                        node_id, ("stats",), expect=("stats",)
                    )
        return out

    def totals(self) -> dict[str, int]:
        """Cluster-wide counter totals for the *current* incarnations."""
        per_node = {
            node_id: NodeStats(**payload["counters"])
            for node_id, payload in self.stats().items()
        }
        return combine_stats(per_node)

    def grand_totals(self) -> dict[str, int]:
        """Totals including gracefully retired incarnations — the
        cross-restart accounting :meth:`LiveCluster.grand_totals` does
        in-process, rebuilt from control-channel snapshots (hard-killed
        incarnations are genuinely lost, exactly like a real crash)."""
        totals = self.totals()
        with self._lock:
            for handle in self.handles.values():
                for snapshot in handle.retired:
                    for name, value in snapshot.items():
                        totals[name] = totals.get(name, 0) + value
        return totals

    # -- addresses / observability ----------------------------------------
    def addresses(self) -> list[tuple[int, str, int]]:
        """(node_id, host, data port) of every worker that came up."""
        return [
            (h.node_id, h.spec.host, h.port)
            for h in sorted(self.handles.values(), key=lambda h: h.node_id)
            if h.port is not None
        ]

    def metrics_urls(self) -> list[str]:
        """Every live worker's Prometheus ``/metrics`` URL."""
        return [
            f"http://{h.spec.host}:{h.obs_port}/metrics"
            for h in sorted(self.handles.values(), key=lambda h: h.node_id)
            if h.alive and h.obs_port
        ]

    def scrape_totals(self, *, prefix: str = "repro_") -> dict[str, float]:
        """Aggregate worker ``/metrics`` endpoints over HTTP — the
        external-observer view of :meth:`totals`."""
        return scrape_totals(self.metrics_urls(), prefix=prefix)

    def obs_endpoints(self) -> list[tuple[int, str]]:
        """(node_id, base URL) of every live worker's obs server."""
        return [
            (h.node_id, f"http://{h.spec.host}:{h.obs_port}")
            for h in sorted(self.handles.values(), key=lambda h: h.node_id)
            if h.alive and h.obs_port
        ]

    def trace_urls(self) -> list[str]:
        """Every live worker's span-export ``/trace`` URL."""
        return [base + "/trace" for _node, base in self.obs_endpoints()]

    def collector(self, **kwargs) -> ClusterTraceCollector:
        """A cluster-wide trace collector over the workers' obs
        endpoints (see :mod:`repro.obs.collect`)."""
        return ClusterTraceCollector(self.obs_endpoints(), **kwargs)

    # -- flight recordings -------------------------------------------------
    def harvest_flight(self, node_id: int) -> dict | None:
        """Read one worker's flight recording off disk, if it left one.

        A SIGKILL'd worker runs no handlers, so what the harvest finds
        is the recorder's last periodic flush — by design the freshest
        evidence a hard crash can leave.  Parsed recordings are cached
        in :attr:`flight_reports`.
        """
        handle = self.handles[node_id]
        path = flight_path(handle.spec)
        if path is None or not os.path.exists(path):
            return None
        try:
            report = load_flight(path)
        except (OSError, ValueError):
            return None
        self.flight_reports[node_id] = report
        return report

    def flight_recordings(self) -> dict[int, dict]:
        """Harvest every worker's on-disk flight recording."""
        for node_id in sorted(self.handles):
            self.harvest_flight(node_id)
        return dict(self.flight_reports)

    # -- stop / kill / restart --------------------------------------------
    def stop(
        self, node_id: int, *, checkpoint: bool = True, timeout: float = 10.0
    ) -> dict[str, int] | None:
        """Graceful shutdown of one worker; returns its final counters."""
        with self._lock:
            handle = self.handles[node_id]
            if not handle.alive:
                return None
            handle.stopped = True
            handle.conn.send(("stop", checkpoint))
            try:
                final = self._drain_to_stopped(handle, timeout)
            except (RuntimeError, TimeoutError):
                final = None
            handle.process.join(timeout)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout)
            if final is not None:
                handle.retired.append(final)
            return final

    def _drain_to_stopped(self, handle, timeout: float):
        """Read replies until the ``stopped`` record, tolerating any
        request/response messages already in flight."""
        deadline = time.monotonic() + timeout
        _kind, payload = self._recv(
            handle,
            expect=("stopped", "stats", "checkpoint", "query_issued"),
            deadline=deadline,
        )
        while _kind != "stopped":
            _kind, payload = self._recv(
                handle,
                expect=("stopped", "stats", "checkpoint", "query_issued"),
                deadline=deadline,
            )
        return payload

    def kill(self, node_id: int, *, timeout: float = 10.0) -> None:
        """Hard-kill one worker (SIGKILL): no stop command, no final
        checkpoint, no retired snapshot — the crash simulation."""
        with self._lock:
            handle = self.handles[node_id]
            handle.stopped = True  # intentional: the monitor must not restart
            if handle.process is not None:
                handle.process.kill()
                handle.process.join(timeout)
            # SIGKILL ran no handlers; whatever periodic flush the
            # worker's flight recorder last wrote is the postmortem.
            self.harvest_flight(node_id)

    def restart(self, node_id: int, *, wire: bool = True) -> dict:
        """Respawn a dead worker on its pinned port; returns ready info.

        The respawned spec pins the port the first incarnation resolved,
        so surviving dial supervisors (which retry forever by default)
        reconnect without re-wiring; with ``wire=True`` the edges this
        node *dials* (its lower-id side) are re-sent too.
        """
        with self._lock:
            handle = self.handles[node_id]
            if handle.alive:
                raise RuntimeError(f"worker {node_id} is still running")
            handle.restarts += 1
            handle.spec = replace(
                handle.spec,
                # pin the resolved port so surviving dial supervisors
                # reconnect, and mint GUIDs from a fresh epoch so their
                # dedup tables don't swallow the new life's descriptors.
                port=handle.port if handle.port is not None else handle.spec.port,
                guid_epoch=handle.restarts,
            )
            self._spawn(handle)
            kind, payload = self._recv(
                handle,
                expect=("ready",),
                deadline=time.monotonic() + self.ready_timeout,
            )
            handle.info = payload
            if wire and self.topology is not None:
                for neighbor in self.topology.neighbors(node_id):
                    if node_id < neighbor:
                        self._wire_edge(node_id, neighbor)
            _log.info(
                "worker restarted",
                extra={
                    "node": node_id,
                    "restarts": handle.restarts,
                    "recovery": payload.get("recovery"),
                },
            )
            return payload

    # -- crash monitor ----------------------------------------------------
    def reap(self) -> list[int]:
        """One monitor pass: find unexpected deaths, apply the restart
        policy; returns the node ids found crashed this pass."""
        crashed: list[int] = []
        with self._lock:
            if self._closing:
                return crashed
            for node_id, handle in self.handles.items():
                if (
                    handle.process is None
                    or handle.alive
                    or handle.stopped
                    or not handle.info
                ):
                    continue
                reason = f"exit code {handle.process.exitcode}"
                self.crashes.append((node_id, reason))
                crashed.append(node_id)
                self.harvest_flight(node_id)
                _log.warning(
                    "worker crashed",
                    extra={"node": node_id, "reason": reason},
                )
                if (
                    self.restart_policy == "on-crash"
                    and handle.restarts < self.max_restarts
                ):
                    try:
                        self.restart(node_id)
                    except (RuntimeError, TimeoutError) as exc:
                        _log.error(
                            "restart failed",
                            extra={"node": node_id, "error": str(exc)},
                        )
                        handle.stopped = True  # give up on this worker
                else:
                    handle.stopped = True  # recorded; stop re-reporting
        return crashed

    def _watch(self) -> None:
        while not self._closing:
            try:
                self.reap()
            except Exception:  # pragma: no cover - monitor must survive
                _log.exception("monitor pass failed")
            time.sleep(self._monitor_interval)

    # -- teardown ---------------------------------------------------------
    def close(self, *, checkpoint: bool = True, timeout: float = 10.0) -> None:
        """Stop every worker gracefully; kill whatever will not stop."""
        self._closing = True
        if self._monitor is not None:
            self._monitor.join(self._monitor_interval * 5 + 1.0)
            self._monitor = None
        for node_id in sorted(self.handles):
            try:
                self.stop(node_id, checkpoint=checkpoint, timeout=timeout)
            except (RuntimeError, TimeoutError, OSError):
                handle = self.handles[node_id]
                if handle.process is not None and handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout)
        for handle in self.handles.values():
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_workers(self) -> int:
        return len(self.handles)

    def worker_pids(self) -> dict[int, int | None]:
        return {
            node_id: (handle.process.pid if handle.process else None)
            for node_id, handle in self.handles.items()
        }

    def cpu_budget(self) -> int:
        """Cores the cluster can actually occupy: min(workers, cores)."""
        return min(self.n_workers, os.cpu_count() or 1)
