"""Multi-seed experiment sweeps.

A single seeded run shows the paper's shapes; a seed sweep shows they are
not a lucky draw.  :func:`run_seed_sweep` repeats any registered
experiment across seeds and aggregates each banded row: mean, standard
deviation, and how many seeds landed in band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.results import ExperimentResult
from repro.metrics.report import ComparisonRow

__all__ = ["RowSweep", "SweepResult", "run_seed_sweep"]


@dataclass(frozen=True)
class RowSweep:
    """Aggregate of one comparison row across seeds."""

    label: str
    paper: float | str
    mean: float
    std: float
    band: tuple[float, float] | None
    n_in_band: int
    n_seeds: int

    @property
    def all_in_band(self) -> bool:
        return self.band is None or self.n_in_band == self.n_seeds

    def __str__(self) -> str:  # pragma: no cover - display convenience
        band = (
            f"[{self.band[0]:.2f}, {self.band[1]:.2f}] "
            f"{self.n_in_band}/{self.n_seeds} in band"
            if self.band
            else "unbanded"
        )
        return f"{self.label}: {self.mean:.3f} ± {self.std:.3f} ({band})"


@dataclass(frozen=True)
class SweepResult:
    """All row aggregates for one experiment's seed sweep."""

    experiment_id: str
    seeds: tuple[int, ...]
    rows: tuple[RowSweep, ...]

    @property
    def all_in_band(self) -> bool:
        return all(row.all_in_band for row in self.rows)

    def report(self) -> str:
        lines = [
            f"{self.experiment_id}: seed sweep over {list(self.seeds)}",
            "-" * 60,
        ]
        lines.extend(str(row) for row in self.rows)
        return "\n".join(lines)


def run_seed_sweep(
    experiment_id: str, *, seeds, workers: int = 0, **kwargs
) -> SweepResult:
    """Run ``experiment_id`` for each seed and aggregate its rows.

    Rows are matched by label across runs; experiments whose row sets vary
    by seed (none do today) would raise a ValueError.

    ``workers`` fans the per-seed trials out through the parallel
    experiment engine (``repro.parallel``): >1 uses a process pool with
    shared-memory trace blocks, 1 runs in-process with the trace memo and
    ruleset cache, 0 (default) is the plain serial path.  All modes
    produce identical trials (same seeds, deterministic replay).
    """
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if workers > 0:
        from repro.parallel.engine import ExperimentTask, ParallelExperimentEngine

        engine = ParallelExperimentEngine(workers)
        run = engine.run(
            [
                ExperimentTask(experiment_id, {"seed": seed, **kwargs})
                for seed in seeds
            ]
        )
        results: list[ExperimentResult] = run.results
    else:
        from repro.experiments.registry import run_experiment

        results = [
            run_experiment(experiment_id, seed=seed, **kwargs) for seed in seeds
        ]
    labels = [row.label for row in results[0].rows]
    for result in results[1:]:
        if [row.label for row in result.rows] != labels:
            raise ValueError(
                f"row sets differ across seeds for {experiment_id!r}"
            )
    sweeps = []
    for i, label in enumerate(labels):
        rows: list[ComparisonRow] = [result.rows[i] for result in results]
        values = np.array([row.measured for row in rows], dtype=float)
        band = rows[0].band
        n_in_band = sum(1 for row in rows if row.within_band)
        sweeps.append(
            RowSweep(
                label=label,
                paper=rows[0].paper,
                mean=float(values.mean()),
                std=float(values.std(ddof=1)) if len(values) > 1 else 0.0,
                band=band,
                n_in_band=n_in_band,
                n_seeds=len(seeds),
            )
        )
    return SweepResult(
        experiment_id=experiment_id, seeds=seeds, rows=tuple(sweeps)
    )
