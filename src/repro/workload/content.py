"""Content catalog: files, categories, popularity and replication.

The online overlay simulator needs actual shared content — files grouped
into interest categories, with Zipf popularity inside each category — so
that queries can hit or miss.  The monitor-node trace generator only needs
file *names* for reply records; it reuses :meth:`ContentCatalog.file_name`.
"""

from __future__ import annotations

from repro.utils.rng import as_generator
from repro.workload.interests import InterestProfile
from repro.workload.zipf import ZipfSampler

__all__ = ["ContentCatalog"]


class ContentCatalog:
    """A universe of files partitioned evenly into categories.

    File ids are integers in ``[0, n_categories * files_per_category)``;
    file ``f`` belongs to category ``f // files_per_category``.  Within a
    category, query and replication popularity follow a bounded Zipf law.
    """

    def __init__(
        self,
        n_categories: int,
        files_per_category: int,
        *,
        popularity_exponent: float = 1.0,
    ) -> None:
        if n_categories < 1 or files_per_category < 1:
            raise ValueError("n_categories and files_per_category must be >= 1")
        self.n_categories = int(n_categories)
        self.files_per_category = int(files_per_category)
        self._rank_sampler = ZipfSampler(files_per_category, popularity_exponent)

    @property
    def n_files(self) -> int:
        return self.n_categories * self.files_per_category

    def category_of(self, file_id: int) -> int:
        if not 0 <= file_id < self.n_files:
            raise IndexError(f"file id {file_id} out of range [0, {self.n_files})")
        return file_id // self.files_per_category

    def sample_file(self, rng, category: int) -> int:
        """Draw a file from ``category`` with Zipf popularity."""
        if not 0 <= category < self.n_categories:
            raise IndexError(f"category {category} out of range")
        rank = self._rank_sampler.sample(as_generator(rng))
        return category * self.files_per_category + rank

    def sample_library(
        self, rng, profile: InterestProfile, *, size: int
    ) -> frozenset[int]:
        """Files a peer with ``profile`` shares (interest-based locality).

        Draws ``size`` files (with replacement, then deduplicated) from the
        peer's interest categories, so peers with overlapping interests end
        up sharing overlapping content — the premise behind both
        interest-based shortcuts and association-rule routing.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        rng = as_generator(rng)
        library: set[int] = set()
        for _ in range(size):
            category = profile.sample_category(rng)
            library.add(self.sample_file(rng, category))
        return frozenset(library)

    def file_name(self, file_id: int) -> str:
        """Stable human-readable name, used in reply records."""
        category = self.category_of(file_id)
        rank = file_id % self.files_per_category
        return f"cat{category:03d}/file{rank:05d}.dat"

    def query_matches(self, queried_file: int, library: frozenset[int]) -> bool:
        """Whether a library satisfies a query for ``queried_file``.

        Exact-id match: the overlay simulator issues queries for specific
        files (keyword semantics are modelled by the category structure).
        """
        return queried_file in library
