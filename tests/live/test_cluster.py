"""Live-cluster integration: real sockets, real traffic, real failures.

The ``live`` marker tags the heavyweight tests (hundreds of queries over
TCP); CI runs them in a dedicated step under a hard timeout.  Every
async body also runs under its own ``asyncio.wait_for`` so a routing or
teardown bug fails the test instead of hanging the suite.
"""

import asyncio

import numpy as np
import pytest

from repro.live import LiveCluster, harness_config, interest_plan, make_vocabulary
from repro.network.topology import Topology


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def star(n_nodes: int) -> Topology:
    return Topology(n_nodes, [(0, i) for i in range(1, n_nodes)])


def targeted_plan(n_leaves: int, vocabulary, n_queries: int, rng):
    """Each leaf queries terms owned by one fixed *other* leaf — the
    interest locality that makes the center's rules learnable."""
    n_nodes = n_leaves + 1
    owned = {
        node: [t for i, t in enumerate(vocabulary) if i % n_nodes == node]
        for node in range(n_nodes)
    }
    plan = []
    for q in range(n_queries):
        origin = 1 + q % n_leaves
        target = 1 + (origin % n_leaves)
        terms = owned[target]
        plan.append((origin, terms[int(rng.integers(0, len(terms)))]))
    return plan


class TestSmallCluster:
    def test_query_travels_two_hops(self):
        async def body():
            path = Topology(3, [(0, 1), (1, 2)])
            vocab = make_vocabulary(6)
            async with LiveCluster(path) as cluster:
                cluster.stock_partitioned_library(vocab)
                owner = cluster.owner_of(vocab[2])
                assert owner == 2
                hits = await cluster.query(0, vocab[2])
            assert hits == 1

        run(body())

    def test_duplicate_guid_suppression_on_a_cycle(self):
        async def body():
            # A triangle delivers each query twice to the far node; the
            # GUID route table must drop the duplicate, so exactly one
            # hit comes back.
            triangle = Topology(3, [(0, 1), (1, 2), (0, 2)])
            vocab = make_vocabulary(6)
            async with LiveCluster(triangle) as cluster:
                cluster.stock_partitioned_library(vocab)
                hits = await cluster.query(0, vocab[1])
            assert hits == 1

        run(body())

    def test_interest_plan_is_deterministic(self):
        vocab = make_vocabulary(10)
        plan_a = interest_plan(4, vocab, 25, np.random.default_rng(3))
        plan_b = interest_plan(4, vocab, 25, np.random.default_rng(3))
        assert plan_a == plan_b
        assert len(plan_a) == 25
        assert all(0 <= node < 4 for node, _term in plan_a)


@pytest.mark.live
class TestRuleRoutingOverTcp:
    def test_rules_beat_flooding_per_answered_query(self):
        """The acceptance run: >=5 nodes, >=200 queries over real TCP,
        association routing strictly cheaper per answered query."""

        async def body():
            topology = star(6)  # 6 nodes, >=5 required
            vocab = make_vocabulary(20)
            plan = targeted_plan(5, vocab, 240, np.random.default_rng(11))
            assert len(plan) >= 200

            async with LiveCluster(
                topology, rule_routed=True, top_k=1
            ) as cluster:
                cluster.stock_partitioned_library(vocab)
                rule = await cluster.run_plan(plan)
                totals = cluster.totals()

            async with LiveCluster(topology, rule_routed=False) as cluster:
                cluster.stock_partitioned_library(vocab)
                flood = await cluster.run_plan(plan)

            # Both modes answer; rules keep finding the content...
            assert flood["answered"] > 0
            assert rule["answered"] > 0
            assert rule["answer_rate"] >= 0.9
            # ...while the center actually exercises learned rules...
            assert totals["queries_rule_routed"] > 0
            assert totals["rule_regenerations"] > 0
            # ...and the headline claim holds on the wire: traffic per
            # answered query strictly below flooding's.
            assert rule["frames_per_answered"] < flood["frames_per_answered"]

        run(body())

    def test_killed_peer_triggers_backoff_reconnect_and_cluster_answers(self):
        async def body():
            topology = star(6)
            vocab = make_vocabulary(20)
            config = harness_config(
                retry_initial_delay=0.05, retry_backoff=2.0, retry_max_delay=0.4
            )
            async with LiveCluster(
                topology, rule_routed=True, top_k=1, config=config
            ) as cluster:
                cluster.stock_partitioned_library(vocab)
                warmup = targeted_plan(5, vocab, 60, np.random.default_rng(5))
                await cluster.run_plan(warmup)

                # Kill leaf 5 (the center dials it, so the center's
                # supervisor owns the reconnect).
                await cluster.kill(5)
                await asyncio.sleep(0.5)
                center = cluster.nodes[0]
                assert 5 not in center.connected_peers
                assert center.stats.dial_failures >= 2  # retrying, backed off
                assert center.stats.reconnects == 0

                # The cluster keeps answering queries among live nodes.
                term_on_2 = next(
                    t for i, t in enumerate(vocab) if i % 6 == 2
                )
                hits = await cluster.query(1, term_on_2)
                assert hits == 1

                # Bring the peer back: the supervisor's next retry lands.
                await cluster.restart(5)
                await cluster.wait_connected(timeout=10.0)
                assert center.stats.reconnects >= 1
                assert 5 in center.connected_peers

                # And content on the restarted node is reachable again —
                # query from node 4, whose warmup traffic taught the
                # center the 4 -> 5 rule (top_k=1 sends it nowhere else).
                term_on_5 = next(
                    t for i, t in enumerate(vocab) if i % 6 == 5
                )
                hits = await cluster.query(4, term_on_5)
                assert hits == 1

        run(body())
