"""Bench `confidence-ablation`: §VI extension — confidence-based pruning.

Paper: "The addition of confidence-based pruning ... could be one way of
reducing the size of rule sets while retaining high coverage and
success."
"""

from benchmarks.conftest import run_and_report


def test_confidence_pruning(benchmark):
    result = run_and_report(benchmark, "confidence-ablation")
    sizes = result.extras["sizes"]
    successes = result.extras["successes"]
    # Sizes strictly shrink at the aggressive end.
    assert sizes[0.5] < sizes[0.0] * 0.5
    # Mild pruning retains success.
    assert successes[0.1] >= successes[0.0] - 0.05
