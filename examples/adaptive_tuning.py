#!/usr/bin/env python
"""Tuning the Adaptive Sliding Window thresholds.

Section V-D of the paper explores the threshold history length (N=10 vs
N=50).  This script sweeps the history length, the initial threshold and
the slack multiplier over one fixed trace, charting the frontier between
rule-set generation cost and achieved coverage/success — the design
trade-off the adaptive strategy exists to navigate.

Run:  python examples/adaptive_tuning.py
"""

import time

from repro import (
    AdaptiveSlidingWindow,
    MonitorTraceConfig,
    MonitorTraceGenerator,
    SlidingWindow,
    blocks_from_arrays,
)


def main() -> None:
    config = MonitorTraceConfig()
    n_blocks = 40
    print(f"generating {n_blocks}-block calibrated trace ...")
    t0 = time.time()
    generator = MonitorTraceGenerator(config, seed=20060814)
    arrays = generator.generate_pair_arrays(n_blocks * config.block_size)
    blocks = blocks_from_arrays(
        arrays.source, arrays.replier, block_size=config.block_size
    )
    print(f"done in {time.time() - t0:.1f}s\n")

    sliding = SlidingWindow().run(blocks)
    print(
        f"reference (Sliding Window): coverage={sliding.average_coverage:.3f} "
        f"success={sliding.average_success:.3f} "
        f"generations={sliding.n_generations}\n"
    )

    print(
        f"{'history':>8} {'initial':>8} {'slack':>6} | "
        f"{'coverage':>9} {'success':>8} {'gens':>5} {'blocks/gen':>11}"
    )
    print("-" * 66)
    for history in (5, 10, 50):
        for initial in (0.6, 0.7, 0.8):
            for slack in (0.9, 1.0):
                run = AdaptiveSlidingWindow(
                    history=history, initial_threshold=initial, slack=slack
                ).run(blocks)
                print(
                    f"{history:>8} {initial:>8.1f} {slack:>6.1f} | "
                    f"{run.average_coverage:>9.3f} {run.average_success:>8.3f} "
                    f"{run.n_generations:>5} {run.blocks_per_generation:>11.2f}"
                )

    print(
        "\nPaper's observation reproduced: longer histories (N=50) regenerate"
        " a little less often at nearly identical quality; slack < 1 trades"
        " a few points of success for markedly fewer regenerations."
    )


if __name__ == "__main__":
    main()
